//! The per-processor SMS predictor: AGT + PHT + prediction registers.

use crate::agt::{ActiveGenerationTable, AgtConfig, TrainedPattern};
use crate::index::IndexScheme;
use crate::pht::{PatternHistoryTable, PhtCapacity};
use crate::region::RegionConfig;
use crate::streamer::{PredictionRegisterFile, StreamerConfig};
use serde::{Deserialize, Serialize};
use trace::Pc;

/// Complete configuration of one SMS predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmsConfig {
    /// Spatial region geometry (default: 2 kB regions of 64 B blocks).
    pub region: RegionConfig,
    /// Prediction-index scheme (default: PC+offset).
    pub index_scheme: IndexScheme,
    /// Active generation table sizing (default: 32-entry filter, 64-entry
    /// accumulation table).
    pub agt: AgtConfig,
    /// Pattern history table capacity (default: 16 k entries, 16-way).
    pub pht: PhtCapacity,
    /// Prediction-register file and streaming rate.
    pub streamer: StreamerConfig,
}

impl SmsConfig {
    /// The practical configuration evaluated in the paper (Figure 11).
    pub fn paper_default() -> Self {
        Self {
            region: RegionConfig::paper_default(),
            index_scheme: IndexScheme::PcOffset,
            agt: AgtConfig::paper_default(),
            pht: PhtCapacity::paper_default(),
            streamer: StreamerConfig::paper_default(),
        }
    }

    /// An idealized configuration for limit studies: unbounded AGT and PHT.
    pub fn idealized(index_scheme: IndexScheme, region: RegionConfig) -> Self {
        Self {
            region,
            index_scheme,
            agt: AgtConfig::unbounded(),
            pht: PhtCapacity::Unbounded,
            streamer: StreamerConfig::paper_default(),
        }
    }

    /// Returns a copy with a different PHT capacity.
    pub fn with_pht(mut self, pht: PhtCapacity) -> Self {
        self.pht = pht;
        self
    }

    /// Returns a copy with a different index scheme.
    pub fn with_index_scheme(mut self, scheme: IndexScheme) -> Self {
        self.index_scheme = scheme;
        self
    }

    /// Returns a copy with a different region geometry.
    pub fn with_region(mut self, region: RegionConfig) -> Self {
        self.region = region;
        self
    }
}

impl Default for SmsConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Counters exposed by one predictor instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorStats {
    /// Trigger accesses observed (new spatial region generations).
    pub triggers: u64,
    /// Trigger accesses that hit in the PHT and produced a prediction.
    pub pht_hits: u64,
    /// Patterns written into the PHT (generations trained).
    pub patterns_trained: u64,
    /// Stream requests issued.
    pub stream_requests: u64,
}

/// One processor's SMS predictor.
#[derive(Debug, Clone)]
pub struct SmsPredictor {
    config: SmsConfig,
    agt: ActiveGenerationTable,
    pht: PatternHistoryTable,
    registers: PredictionRegisterFile,
    stats: PredictorStats,
}

impl SmsPredictor {
    /// Creates a predictor with the given configuration.
    pub fn new(config: &SmsConfig) -> Self {
        Self {
            config: *config,
            agt: ActiveGenerationTable::new(config.region, config.agt),
            pht: PatternHistoryTable::new(config.pht),
            registers: PredictionRegisterFile::new(config.region, config.streamer),
            stats: PredictorStats::default(),
        }
    }

    /// The configuration this predictor was built with.
    pub fn config(&self) -> &SmsConfig {
        &self.config
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    /// Number of patterns currently stored in the PHT.
    pub fn pht_len(&self) -> usize {
        self.pht.len()
    }

    /// Observes one demand L1 access and returns the block addresses SMS
    /// wants to stream into the primary cache.
    pub fn on_access(&mut self, addr: u64, pc: Pc) -> Vec<u64> {
        let mut requests = Vec::new();
        self.on_access_into(addr, pc, &mut requests);
        requests
    }

    /// Allocation-free variant of [`on_access`](Self::on_access): appends
    /// the block addresses to stream to `out` (in the same order) instead of
    /// returning a fresh vector.  This is the path the driver's batched hot
    /// loop takes through [`SmsPrefetcher`](crate::SmsPrefetcher).
    pub fn on_access_into(&mut self, addr: u64, pc: Pc, out: &mut Vec<u64>) {
        let outcome = self.agt.record_access(addr, pc);
        if let Some(spilled) = outcome.spilled {
            self.train(spilled);
        }
        if outcome.is_trigger {
            self.stats.triggers += 1;
            let key = self.config.index_scheme.key(pc, addr, &self.config.region);
            if let Some(mut pattern) = self.pht.lookup(key) {
                self.stats.pht_hits += 1;
                // The trigger block is being demand-fetched already.
                pattern.clear(self.config.region.region_offset(addr));
                self.registers
                    .allocate(self.config.region.region_base(addr), pattern);
            }
        }
        let issued_before = out.len();
        self.registers.drain_default_into(out);
        self.stats.stream_requests += (out.len() - issued_before) as u64;
    }

    /// Observes the eviction or invalidation of `block_addr` from the primary
    /// cache, ending the region's generation and training the PHT.
    pub fn on_block_removed(&mut self, block_addr: u64) {
        if let Some(trained) = self.agt.end_generation(block_addr) {
            self.train(trained);
        }
    }

    /// Flushes all live generations into the PHT (end of trace).
    pub fn flush(&mut self) {
        for trained in self.agt.drain() {
            self.train(trained);
        }
    }

    fn train(&mut self, trained: TrainedPattern) {
        debug_assert!(
            trained.pattern.count() >= 2,
            "filter-only generations never train"
        );
        let trigger_addr = self
            .config
            .region
            .block_at(trained.region_base, trained.trigger_offset);
        let key =
            self.config
                .index_scheme
                .key(trained.trigger_pc, trigger_addr, &self.config.region);
        self.pht.insert(key, trained.pattern);
        self.stats.patterns_trained += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> SmsPredictor {
        SmsPredictor::new(&SmsConfig::idealized(
            IndexScheme::PcOffset,
            RegionConfig::paper_default(),
        ))
    }

    /// Walks the predictor through one full generation of the given offsets
    /// at `base`, then ends it by evicting the first block.
    fn run_generation(p: &mut SmsPredictor, base: u64, pc: u64, offsets: &[u32]) -> Vec<u64> {
        let mut streamed = Vec::new();
        for &o in offsets {
            streamed.extend(p.on_access(base + u64::from(o) * 64, pc));
        }
        p.on_block_removed(base + u64::from(offsets[0]) * 64);
        streamed
    }

    #[test]
    fn learned_pattern_predicts_new_region() {
        let mut p = predictor();
        let pc = 0x4000;
        // Train on region A.
        let streamed = run_generation(&mut p, 0x10_0000, pc, &[0, 3, 7]);
        assert!(streamed.is_empty(), "nothing to stream while training");
        assert_eq!(p.stats().patterns_trained, 1);
        // A trigger with the same PC and offset in a brand-new region
        // predicts the remaining blocks.
        let reqs = p.on_access(0x20_0000, pc);
        assert_eq!(p.stats().pht_hits, 1);
        let expected: Vec<u64> = vec![0x20_0000 + 3 * 64, 0x20_0000 + 7 * 64];
        assert_eq!(reqs, expected);
    }

    #[test]
    fn different_trigger_offset_does_not_predict_with_pc_offset() {
        let mut p = predictor();
        let pc = 0x4000;
        run_generation(&mut p, 0x10_0000, pc, &[0, 3, 7]);
        // Same PC but trigger lands on offset 5: different key.
        let reqs = p.on_access(0x20_0000 + 5 * 64, pc);
        assert!(reqs.is_empty());
    }

    #[test]
    fn address_indexing_predicts_only_revisited_regions() {
        let mut p = SmsPredictor::new(&SmsConfig::idealized(
            IndexScheme::Address,
            RegionConfig::paper_default(),
        ));
        let pc = 0x4000;
        run_generation(&mut p, 0x10_0000, pc, &[0, 3]);
        // New region: no prediction.
        assert!(p.on_access(0x20_0000, pc).is_empty());
        p.on_block_removed(0x20_0000);
        // Revisit the trained region: prediction fires.
        let reqs = p.on_access(0x10_0000, 0x9999);
        assert_eq!(reqs, vec![0x10_0000 + 3 * 64]);
    }

    #[test]
    fn trigger_block_not_streamed() {
        let mut p = predictor();
        let pc = 0x4000;
        run_generation(&mut p, 0x10_0000, pc, &[2, 9]);
        let reqs = p.on_access(0x20_0000 + 2 * 64, pc);
        assert_eq!(reqs, vec![0x20_0000 + 9 * 64]);
        assert!(!reqs.contains(&(0x20_0000 + 2 * 64)));
    }

    #[test]
    fn flush_trains_live_generations() {
        let mut p = predictor();
        p.on_access(0x10_0000, 0x4000);
        p.on_access(0x10_0040, 0x4000);
        assert_eq!(p.stats().patterns_trained, 0);
        p.flush();
        assert_eq!(p.stats().patterns_trained, 1);
        assert_eq!(p.pht_len(), 1);
    }

    #[test]
    fn stats_track_stream_requests() {
        let mut p = predictor();
        let pc = 0x4000;
        run_generation(&mut p, 0x10_0000, pc, &[0, 1, 2, 3]);
        let reqs = p.on_access(0x20_0000, pc);
        assert_eq!(p.stats().stream_requests, reqs.len() as u64);
        assert_eq!(p.stats().triggers, 2);
    }

    #[test]
    fn bounded_pht_limits_storage() {
        let cfg = SmsConfig {
            pht: PhtCapacity::Bounded {
                entries: 2,
                associativity: 2,
            },
            ..SmsConfig::idealized(IndexScheme::PcOffset, RegionConfig::paper_default())
        };
        let mut p = SmsPredictor::new(&cfg);
        for i in 0..8u64 {
            run_generation(&mut p, 0x10_0000 + i * 0x1_0000, 0x4000 + i * 4, &[0, 1]);
        }
        assert!(p.pht_len() <= 2);
    }
}
