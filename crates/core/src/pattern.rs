//! Spatial pattern bit vectors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A spatial pattern: one bit per cache block in a spatial region, set when
/// the block was (or is predicted to be) accessed during a generation.
///
/// Regions of up to 8 kB with 64 B blocks need 128 bits; the pattern stores
/// its bits in two 64-bit words and carries its logical length so that
/// patterns from differently-sized regions cannot be confused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpatialPattern {
    bits: [u64; 2],
    len: u32,
}

impl SpatialPattern {
    /// Maximum number of blocks a pattern can describe.
    pub const MAX_BLOCKS: u32 = 128;

    /// Creates an empty pattern over `len` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or greater than [`Self::MAX_BLOCKS`].
    pub fn new(len: u32) -> Self {
        assert!(
            len > 0 && len <= Self::MAX_BLOCKS,
            "pattern length out of range"
        );
        Self { bits: [0; 2], len }
    }

    /// Creates a pattern over `len` blocks with the given offsets set.
    ///
    /// # Panics
    ///
    /// Panics if any offset is out of range.
    pub fn from_offsets(len: u32, offsets: &[u32]) -> Self {
        let mut p = Self::new(len);
        for &o in offsets {
            p.set(o);
        }
        p
    }

    /// Number of blocks the pattern covers.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.bits == [0, 0]
    }

    /// Sets the bit for block `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len`.
    pub fn set(&mut self, offset: u32) {
        assert!(
            offset < self.len,
            "offset {offset} out of range (len {})",
            self.len
        );
        self.bits[(offset / 64) as usize] |= 1u64 << (offset % 64);
    }

    /// Clears the bit for block `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len`.
    pub fn clear(&mut self, offset: u32) {
        assert!(
            offset < self.len,
            "offset {offset} out of range (len {})",
            self.len
        );
        self.bits[(offset / 64) as usize] &= !(1u64 << (offset % 64));
    }

    /// Returns whether the bit for block `offset` is set.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len`.
    pub fn get(&self, offset: u32) -> bool {
        assert!(
            offset < self.len,
            "offset {offset} out of range (len {})",
            self.len
        );
        self.bits[(offset / 64) as usize] & (1u64 << (offset % 64)) != 0
    }

    /// Number of set bits (blocks accessed / predicted).
    pub fn count(&self) -> u32 {
        self.bits[0].count_ones() + self.bits[1].count_ones()
    }

    /// Iterates over the offsets of set bits in ascending order.
    ///
    /// Scans word by word with `trailing_zeros`, so cost is proportional to
    /// the number of set bits, not the pattern length. This is the single
    /// bit-scan implementation; `for_each_set`, `first_set` and `Display`
    /// all share its word-walk.
    pub fn iter_set(&self) -> SetBits {
        SetBits {
            words: self.bits,
            word_index: 0,
        }
    }

    /// Calls `f` with each set offset in ascending order.
    ///
    /// Equivalent to `iter_set().for_each(f)`; kept as a named entry point
    /// for hot loops that want the closure form.
    pub fn for_each_set(&self, mut f: impl FnMut(u32)) {
        self.iter_set().for_each(&mut f);
    }

    /// Offset of the lowest set bit, if any.
    pub fn first_set(&self) -> Option<u32> {
        if self.bits[0] != 0 {
            Some(self.bits[0].trailing_zeros())
        } else if self.bits[1] != 0 {
            Some(64 + self.bits[1].trailing_zeros())
        } else {
            None
        }
    }

    /// Unions another pattern into this one.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn union_with(&mut self, other: &SpatialPattern) {
        assert_eq!(
            self.len, other.len,
            "cannot union patterns of different lengths"
        );
        self.bits[0] |= other.bits[0];
        self.bits[1] |= other.bits[1];
    }

    /// Counts bits set in `self` but not in `other` (predicted but unused
    /// when `other` is the observed pattern).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn count_minus(&self, other: &SpatialPattern) -> u32 {
        assert_eq!(
            self.len, other.len,
            "cannot compare patterns of different lengths"
        );
        (self.bits[0] & !other.bits[0]).count_ones() + (self.bits[1] & !other.bits[1]).count_ones()
    }

    /// Counts bits set in both patterns.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn count_intersection(&self, other: &SpatialPattern) -> u32 {
        assert_eq!(
            self.len, other.len,
            "cannot compare patterns of different lengths"
        );
        (self.bits[0] & other.bits[0]).count_ones() + (self.bits[1] & other.bits[1]).count_ones()
    }
}

/// Iterator over the set offsets of a [`SpatialPattern`], ascending.
///
/// Holds a copy of the pattern words and clears the lowest set bit on each
/// step (`w & (w - 1)`), yielding its position via `trailing_zeros`.
#[derive(Debug, Clone)]
pub struct SetBits {
    words: [u64; 2],
    word_index: u32,
}

impl Iterator for SetBits {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while (self.word_index as usize) < 2 {
            let w = self.words[self.word_index as usize];
            if w != 0 {
                self.words[self.word_index as usize] = w & (w - 1);
                return Some(self.word_index * 64 + w.trailing_zeros());
            }
            self.word_index += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.words[self.word_index.min(1) as usize..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (n, Some(n))
    }
}

impl ExactSizeIterator for SetBits {}
impl std::iter::FusedIterator for SetBits {}

impl fmt::Display for SpatialPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = vec![b'0'; self.len as usize];
        self.for_each_set(|o| buf[o as usize] = b'1');
        f.write_str(std::str::from_utf8(&buf).expect("ASCII digits"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_clear() {
        let mut p = SpatialPattern::new(32);
        assert!(p.is_empty());
        p.set(0);
        p.set(31);
        assert!(p.get(0) && p.get(31) && !p.get(15));
        assert_eq!(p.count(), 2);
        p.clear(0);
        assert!(!p.get(0));
        assert_eq!(p.count(), 1);
    }

    #[test]
    fn wide_patterns_use_both_words() {
        let mut p = SpatialPattern::new(128);
        p.set(5);
        p.set(64);
        p.set(127);
        assert_eq!(p.count(), 3);
        assert_eq!(p.iter_set().collect::<Vec<_>>(), vec![5, 64, 127]);
    }

    #[test]
    fn from_offsets_and_display() {
        let p = SpatialPattern::from_offsets(4, &[1, 3]);
        assert_eq!(p.to_string(), "0101");
    }

    #[test]
    fn set_difference_and_intersection() {
        let a = SpatialPattern::from_offsets(32, &[0, 1, 2, 3]);
        let b = SpatialPattern::from_offsets(32, &[2, 3, 4]);
        assert_eq!(a.count_minus(&b), 2);
        assert_eq!(b.count_minus(&a), 1);
        assert_eq!(a.count_intersection(&b), 2);
    }

    #[test]
    fn union_accumulates() {
        let mut a = SpatialPattern::from_offsets(32, &[0]);
        let b = SpatialPattern::from_offsets(32, &[5, 9]);
        a.union_with(&b);
        assert_eq!(a.iter_set().collect::<Vec<_>>(), vec![0, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_offset_panics() {
        let mut p = SpatialPattern::new(32);
        p.set(32);
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn mismatched_lengths_panic() {
        let a = SpatialPattern::new(32);
        let b = SpatialPattern::new(64);
        let _ = a.count_minus(&b);
    }

    #[test]
    fn first_set_finds_lowest_bit_in_either_word() {
        assert_eq!(SpatialPattern::new(128).first_set(), None);
        let mut p = SpatialPattern::new(128);
        p.set(127);
        assert_eq!(p.first_set(), Some(127));
        p.set(3);
        assert_eq!(p.first_set(), Some(3));
    }

    #[test]
    fn iter_set_is_exact_size_and_fused() {
        let p = SpatialPattern::from_offsets(128, &[0, 63, 64, 100]);
        let mut it = p.iter_set();
        assert_eq!(it.len(), 4);
        assert_eq!(it.next(), Some(0));
        assert_eq!(it.len(), 3);
        assert!(it.by_ref().count() == 3 && it.next().is_none() && it.next().is_none());
    }

    proptest! {
        // Satellite: the word-scan iterator must agree exactly with the
        // per-bit reference scan it replaced, for every derived entry point.
        #[test]
        fn word_scan_matches_per_bit_scan(offsets in proptest::collection::vec(0u32..128, 0..80)) {
            let p = SpatialPattern::from_offsets(128, &offsets);
            let per_bit: Vec<u32> = (0..p.len()).filter(|&o| p.get(o)).collect();
            prop_assert_eq!(p.iter_set().collect::<Vec<_>>(), per_bit.clone());
            let mut via_closure = Vec::new();
            p.for_each_set(|o| via_closure.push(o));
            prop_assert_eq!(via_closure, per_bit.clone());
            prop_assert_eq!(p.first_set(), per_bit.first().copied());
            let per_bit_display: String =
                (0..p.len()).map(|o| if p.get(o) { '1' } else { '0' }).collect();
            prop_assert_eq!(p.to_string(), per_bit_display);
        }

        #[test]
        fn count_matches_iter_set(offsets in proptest::collection::vec(0u32..64, 0..40)) {
            let p = SpatialPattern::from_offsets(64, &offsets);
            prop_assert_eq!(p.count() as usize, p.iter_set().count());
            // every offset we set is reported set
            for &o in &offsets {
                prop_assert!(p.get(o));
            }
        }

        #[test]
        fn union_is_superset(xs in proptest::collection::vec(0u32..32, 0..20),
                             ys in proptest::collection::vec(0u32..32, 0..20)) {
            let a = SpatialPattern::from_offsets(32, &xs);
            let b = SpatialPattern::from_offsets(32, &ys);
            let mut u = a;
            u.union_with(&b);
            for o in a.iter_set().chain(b.iter_set()) {
                prop_assert!(u.get(o));
            }
            prop_assert_eq!(u.count_minus(&a), b.count_minus(&a));
        }
    }
}
