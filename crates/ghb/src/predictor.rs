//! The per-processor GHB PC/DC predictor.

use serde::{Deserialize, Serialize};
use trace::Pc;

/// Configuration of one GHB predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GhbConfig {
    /// Number of entries in the global history buffer (the paper evaluates
    /// 256 and 16 k).
    pub history_entries: usize,
    /// Number of index-table entries (PCs tracked); the original proposal
    /// sizes it like the history buffer.
    pub index_entries: usize,
    /// Cache-block size used to express deltas.
    pub block_bytes: u64,
    /// Maximum prefetches issued per miss (prefetch degree).
    pub degree: usize,
    /// Maximum per-PC history walked when looking for a delta correlation.
    pub max_chain: usize,
}

impl GhbConfig {
    /// A configuration with `entries` history-buffer entries and the paper's
    /// other defaults (degree 4).
    pub fn with_entries(entries: usize) -> Self {
        Self {
            history_entries: entries,
            index_entries: entries,
            block_bytes: 64,
            degree: 4,
            max_chain: 64,
        }
    }

    /// The small configuration evaluated in the paper: 256 entries.
    pub fn paper_small() -> Self {
        Self::with_entries(256)
    }

    /// The large configuration evaluated in the paper: 16 k entries (roughly
    /// the storage of the SMS PHT).
    pub fn paper_large() -> Self {
        Self::with_entries(16 * 1024)
    }
}

impl Default for GhbConfig {
    fn default() -> Self {
        Self::paper_small()
    }
}

/// Sentinel for "no previous entry by this PC" in the `prevs` column.
/// Absolute sequence numbers count up from 0 and never reach it.
const NO_PREV: u64 = u64::MAX;

/// Sentinel marking a free probe slot in [`PcIndex`] (a live mapping's value
/// is an absolute sequence number, which never reaches `u64::MAX`).
const EMPTY_SEQ: u64 = u64::MAX;

/// Open-addressed struct-of-arrays index table: PC -> absolute sequence
/// number of that PC's most recent history entry.
///
/// Replaces a hash map with two dense parallel columns (`pcs`, `seqs`)
/// probed linearly from the Fx hash of the PC; the table is sized to at
/// most half full so probe runs stay short, and removal uses the standard
/// backward-shift so no tombstones accumulate.  Behaviorally this is still
/// exactly a map: same lookups, same contents — FIFO capacity eviction is
/// driven by the caller as before.
#[derive(Debug, Clone)]
struct PcIndex {
    pcs: Vec<Pc>,
    seqs: Vec<u64>,
    mask: usize,
    len: usize,
}

impl PcIndex {
    fn with_capacity(entries: usize) -> Self {
        // At most half full: probe table twice the bounded entry count.
        let slots = (entries.max(1) * 2).next_power_of_two();
        Self {
            pcs: vec![0; slots],
            seqs: vec![EMPTY_SEQ; slots],
            mask: slots - 1,
            len: 0,
        }
    }

    fn home(&self, pc: Pc) -> usize {
        use std::hash::Hasher;
        let mut h = memsim::FxHasher::default();
        h.write_u64(pc);
        (h.finish() as usize) & self.mask
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Probe slot holding `pc`, if present.
    fn find(&self, pc: Pc) -> Option<usize> {
        let mut slot = self.home(pc);
        while self.seqs[slot] != EMPTY_SEQ {
            if self.pcs[slot] == pc {
                return Some(slot);
            }
            slot = (slot + 1) & self.mask;
        }
        None
    }

    fn get(&self, pc: Pc) -> Option<u64> {
        self.find(pc).map(|slot| self.seqs[slot])
    }

    fn contains(&self, pc: Pc) -> bool {
        self.find(pc).is_some()
    }

    /// Inserts or overwrites the mapping for `pc`.
    fn insert(&mut self, pc: Pc, seq: u64) {
        debug_assert!(seq != EMPTY_SEQ);
        let mut slot = self.home(pc);
        while self.seqs[slot] != EMPTY_SEQ {
            if self.pcs[slot] == pc {
                self.seqs[slot] = seq;
                return;
            }
            slot = (slot + 1) & self.mask;
        }
        debug_assert!(self.len < self.pcs.len() / 2, "PcIndex over-filled");
        self.pcs[slot] = pc;
        self.seqs[slot] = seq;
        self.len += 1;
    }

    /// Removes the mapping for `pc` with backward-shift deletion, keeping
    /// every remaining element reachable from its home slot.
    fn remove(&mut self, pc: Pc) {
        let Some(mut hole) = self.find(pc) else {
            return;
        };
        self.len -= 1;
        let mut probe = hole;
        loop {
            probe = (probe + 1) & self.mask;
            if self.seqs[probe] == EMPTY_SEQ {
                break;
            }
            // An element probing from `home` can fill the hole only if the
            // hole lies cyclically within its probe run [home, probe).
            let home = self.home(self.pcs[probe]);
            if (probe.wrapping_sub(home) & self.mask) >= (probe.wrapping_sub(hole) & self.mask) {
                self.pcs[hole] = self.pcs[probe];
                self.seqs[hole] = self.seqs[probe];
                hole = probe;
            }
        }
        self.seqs[hole] = EMPTY_SEQ;
    }
}

/// One processor's GHB PC/DC predictor.
///
/// The history buffer is stored struct-of-arrays: block addresses and
/// previous-entry links in separate dense columns instead of a
/// `Vec<Option<Entry>>`.  Residency of an absolute sequence number is
/// decided purely by the `next_seq` window (a slot inside the window was
/// written at exactly that sequence number), so no per-slot occupancy tag
/// is needed.
#[derive(Debug, Clone)]
pub struct GhbPredictor {
    config: GhbConfig,
    /// Block-aligned miss addresses, indexed by `seq % history_entries`.
    block_addrs: Vec<u64>,
    /// Absolute sequence number of the previous entry by the same PC
    /// (`NO_PREV` when the chain ends), same indexing.
    prevs: Vec<u64>,
    /// Next absolute sequence number.
    next_seq: u64,
    /// PC -> absolute sequence number of that PC's most recent entry.
    index: PcIndex,
    /// Insertion order of index-table entries for capacity eviction.
    index_fifo: std::collections::VecDeque<Pc>,
    misses_observed: u64,
    prefetches_issued: u64,
}

impl GhbPredictor {
    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero entries or zero degree.
    pub fn new(config: &GhbConfig) -> Self {
        assert!(config.history_entries > 0, "history buffer needs entries");
        assert!(config.index_entries > 0, "index table needs entries");
        assert!(config.degree > 0, "prefetch degree must be positive");
        Self {
            config: *config,
            block_addrs: vec![0; config.history_entries],
            prevs: vec![NO_PREV; config.history_entries],
            next_seq: 0,
            index: PcIndex::with_capacity(config.index_entries),
            index_fifo: std::collections::VecDeque::new(),
            misses_observed: 0,
            prefetches_issued: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GhbConfig {
        &self.config
    }

    /// Number of misses observed so far.
    pub fn misses_observed(&self) -> u64 {
        self.misses_observed
    }

    /// Number of prefetch addresses produced so far.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    fn slot(&self, seq: u64) -> usize {
        (seq % self.config.history_entries as u64) as usize
    }

    /// Whether an absolute sequence number is still resident: only the last
    /// `history_entries` insertions are (a slot inside that window was
    /// written at exactly that sequence number).
    fn resident(&self, seq: u64) -> bool {
        seq < self.next_seq && self.next_seq - seq <= self.config.history_entries as u64
    }

    /// Reconstructs this PC's miss-address history, oldest first.
    fn pc_history(&self, pc: Pc) -> Vec<u64> {
        let mut history = Vec::new();
        let mut cursor = self.index.get(pc);
        while let Some(seq) = cursor {
            if !self.resident(seq) {
                break;
            }
            let slot = self.slot(seq);
            history.push(self.block_addrs[slot]);
            if history.len() >= self.config.max_chain {
                break;
            }
            cursor = match self.prevs[slot] {
                NO_PREV => None,
                prev => Some(prev),
            };
        }
        history.reverse();
        history
    }

    /// Observes a miss by instruction `pc` to address `addr` and returns the
    /// block addresses to prefetch into the L2.
    pub fn on_miss(&mut self, pc: Pc, addr: u64) -> Vec<u64> {
        self.misses_observed += 1;
        let block_addr = addr & !(self.config.block_bytes - 1);

        // Insert the new entry, linking it to the PC's previous entry.
        let prev = self
            .index
            .get(pc)
            .filter(|&seq| self.resident(seq))
            .unwrap_or(NO_PREV);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.slot(seq);
        self.block_addrs[slot] = block_addr;
        self.prevs[slot] = prev;
        if !self.index.contains(pc) {
            if self.index.len() >= self.config.index_entries {
                if let Some(victim) = self.index_fifo.pop_front() {
                    self.index.remove(victim);
                }
            }
            self.index_fifo.push_back(pc);
        }
        self.index.insert(pc, seq);

        // Delta correlation over this PC's history.
        let history = self.pc_history(pc);
        if history.len() < 4 {
            return Vec::new();
        }
        let deltas: Vec<i64> = history
            .windows(2)
            .map(|w| (w[1] as i64 - w[0] as i64) / self.config.block_bytes as i64)
            .collect();
        let n = deltas.len();
        let key = (deltas[n - 2], deltas[n - 1]);
        // Search backwards (excluding the key itself) for the most recent
        // earlier occurrence of the delta pair.
        let mut predicted_deltas = Vec::new();
        for i in (1..n - 1).rev() {
            if (deltas[i - 1], deltas[i]) == key {
                // Predict the deltas that followed the earlier occurrence.
                for &d in deltas.iter().skip(i + 1).take(self.config.degree) {
                    predicted_deltas.push(d);
                }
                break;
            }
        }
        if predicted_deltas.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(predicted_deltas.len());
        let mut next = block_addr as i64;
        for d in predicted_deltas {
            next += d * self.config.block_bytes as i64;
            if next >= 0 {
                out.push(next as u64);
            }
        }
        self.prefetches_issued += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stride_is_predicted() {
        let mut ghb = GhbPredictor::new(&GhbConfig::paper_small());
        let pc = 0x400;
        let mut last = Vec::new();
        for i in 0..10u64 {
            last = ghb.on_miss(pc, 0x10_0000 + i * 256);
        }
        assert!(!last.is_empty());
        assert_eq!(last[0], 0x10_0000 + 10 * 256);
        // Degree-4 prediction continues the stride.
        assert!(last.len() <= 4);
        for (k, &addr) in last.iter().enumerate() {
            assert_eq!(addr, 0x10_0000 + (10 + k as u64) * 256);
        }
    }

    #[test]
    fn repeating_delta_pattern_is_predicted() {
        // Deltas alternate +1, +3 blocks; PC/DC should learn the repetition.
        let mut ghb = GhbPredictor::new(&GhbConfig::paper_small());
        let pc = 0x800;
        let mut addr = 0x20_0000u64;
        let mut last = Vec::new();
        for i in 0..12 {
            last = ghb.on_miss(pc, addr);
            addr += if i % 2 == 0 { 64 } else { 192 };
        }
        assert!(
            !last.is_empty(),
            "alternating delta pattern should correlate"
        );
    }

    #[test]
    fn interleaved_pcs_do_not_disturb_each_other() {
        let mut ghb = GhbPredictor::new(&GhbConfig::paper_small());
        let mut last_a = Vec::new();
        for i in 0..10u64 {
            last_a = ghb.on_miss(0x400, 0x10_0000 + i * 64);
            let _ = ghb.on_miss(0x500, 0x80_0000 + i * 4096);
        }
        assert!(!last_a.is_empty());
        assert_eq!(last_a[0], 0x10_0000 + 10 * 64);
    }

    #[test]
    fn random_addresses_produce_few_predictions() {
        let mut ghb = GhbPredictor::new(&GhbConfig::paper_small());
        // Irregular, non-repeating deltas.
        let addrs = [
            0x0u64, 0x1_0040, 0x3_1000, 0x9_2040, 0x2_0080, 0x7_4000, 0x5_00c0,
        ];
        let mut total = 0;
        for (i, &a) in addrs.iter().enumerate() {
            total += ghb.on_miss(0x600, a + (i as u64) * 7 * 64).len();
        }
        assert_eq!(total, 0, "uncorrelated deltas must not produce prefetches");
    }

    #[test]
    fn small_buffer_forgets_old_history() {
        let mut ghb = GhbPredictor::new(&GhbConfig::with_entries(4));
        let pc = 0x400;
        for i in 0..3u64 {
            ghb.on_miss(pc, 0x10_0000 + i * 64);
        }
        // Fill the buffer with another PC's misses, evicting pc's entries.
        for i in 0..8u64 {
            ghb.on_miss(0x900, 0x50_0000 + i * 64);
        }
        // pc's chain is gone; no prediction is possible from stale links.
        let out = ghb.on_miss(pc, 0x10_0000 + 3 * 64);
        assert!(out.is_empty());
    }

    #[test]
    fn counters_track_activity() {
        let mut ghb = GhbPredictor::new(&GhbConfig::paper_small());
        for i in 0..6u64 {
            ghb.on_miss(0x400, 0x10_0000 + i * 64);
        }
        assert_eq!(ghb.misses_observed(), 6);
        assert!(ghb.prefetches_issued() > 0);
        assert_eq!(ghb.config().degree, 4);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn zero_degree_rejected() {
        let mut cfg = GhbConfig::paper_small();
        cfg.degree = 0;
        let _ = GhbPredictor::new(&cfg);
    }

    #[test]
    fn pc_index_basic_ops() {
        let mut idx = PcIndex::with_capacity(8);
        assert_eq!(idx.get(0x400), None);
        idx.insert(0x400, 1);
        idx.insert(0x500, 2);
        idx.insert(0x400, 3); // overwrite
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.get(0x400), Some(3));
        assert_eq!(idx.get(0x500), Some(2));
        idx.remove(0x400);
        assert_eq!(idx.get(0x400), None);
        assert_eq!(idx.get(0x500), Some(2));
        assert_eq!(idx.len(), 1);
        idx.remove(0x999); // absent: no-op
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn pc_index_matches_reference_map_under_churn() {
        // Deterministic xorshift stream of inserts/overwrites/removes over a
        // small PC universe, forcing collisions and backward-shift deletes;
        // the open-addressed table must agree with a reference map at every
        // step.
        let mut idx = PcIndex::with_capacity(16);
        let mut reference = std::collections::HashMap::new();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for step in 0..4000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pc = x % 29; // small universe -> heavy probe collisions
            if x.is_multiple_of(3) && reference.len() >= 14 {
                // Stay under the table's half-full bound like on_miss does
                // via FIFO eviction.
                idx.remove(pc);
                reference.remove(&pc);
            } else if reference.len() < 14 || reference.contains_key(&pc) {
                idx.insert(pc, step);
                reference.insert(pc, step);
            } else {
                idx.remove(pc);
                reference.remove(&pc);
            }
            assert_eq!(idx.len(), reference.len(), "length diverged at {step}");
            for probe in 0..29u64 {
                assert_eq!(
                    idx.get(probe),
                    reference.get(&probe).copied(),
                    "pc {probe} diverged at step {step}"
                );
            }
        }
    }
}
