//! The Global History Buffer (GHB) PC/DC prefetcher of Nesbit & Smith
//! (HPCA 2004), used by the paper as the state-of-the-art baseline
//! (Section 4.6, Figure 11).
//!
//! GHB PC/DC keeps the addresses of recent misses in a FIFO **global history
//! buffer**; an **index table** maps each miss PC to that PC's most recent
//! buffer entry, and entries are chained so the per-PC miss history can be
//! reconstructed newest-to-oldest.  On each miss the prefetcher computes the
//! *delta* sequence of that PC's misses, finds the most recent prior
//! occurrence of the two latest deltas (delta correlation) and predicts that
//! the deltas which followed that occurrence will repeat, issuing prefetches
//! into the secondary cache.
//!
//! Because each lookup walks the buffer several times, the paper (following
//! the original proposal) attaches GHB to the L2, so it observes the L1 miss
//! stream and prefetches into the L2 only.
//!
//! # Example
//!
//! ```
//! use ghb::{GhbConfig, GhbPredictor};
//!
//! let mut ghb = GhbPredictor::new(&GhbConfig::with_entries(256));
//! // A strided miss stream from one PC...
//! let pc = 0x400;
//! let mut predicted = Vec::new();
//! for i in 0..8u64 {
//!     predicted = ghb.on_miss(pc, 0x10_000 + i * 128);
//! }
//! // ...is predicted to continue with the same 128-byte stride.
//! assert!(predicted.contains(&(0x10_000 + 8 * 128)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod predictor;
pub mod prefetcher;

pub use predictor::{GhbConfig, GhbPredictor};
pub use prefetcher::GhbPrefetcher;
