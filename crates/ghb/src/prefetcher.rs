//! Glue between the GHB predictor and the simulated memory system.

use crate::predictor::{GhbConfig, GhbPredictor};
use memsim::{PrefetchLevel, PrefetchRequest, Prefetcher, SystemOutcome};
use trace::MemAccess;

/// GHB PC/DC attached to every processor of a simulated system, observing the
/// L1 miss stream and prefetching into the L2.
#[derive(Debug, Clone)]
pub struct GhbPrefetcher {
    predictors: Vec<GhbPredictor>,
}

impl GhbPrefetcher {
    /// Creates one predictor per processor.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero.
    pub fn new(num_cpus: usize, config: &GhbConfig) -> Self {
        assert!(num_cpus > 0, "need at least one cpu");
        Self {
            predictors: (0..num_cpus).map(|_| GhbPredictor::new(config)).collect(),
        }
    }

    /// The predictor attached to `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn predictor(&self, cpu: u8) -> &GhbPredictor {
        &self.predictors[cpu as usize]
    }

    /// Total prefetches issued across all processors.
    pub fn total_prefetches(&self) -> u64 {
        self.predictors.iter().map(|p| p.prefetches_issued()).sum()
    }
}

impl Prefetcher for GhbPrefetcher {
    fn on_access(&mut self, access: &MemAccess, outcome: &SystemOutcome) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        self.on_access_into(access, outcome, &mut out);
        out
    }

    fn on_access_into(
        &mut self,
        access: &MemAccess,
        outcome: &SystemOutcome,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let cpu = access.cpu as usize;
        if cpu >= self.predictors.len() {
            return;
        }
        // GHB observes the L2 access stream, i.e. L1 misses.
        if !outcome.hierarchy.l1_miss() || access.kind.is_write() {
            return;
        }
        out.extend(
            self.predictors[cpu]
                .on_miss(access.pc, access.addr)
                .into_iter()
                .map(|addr| PrefetchRequest {
                    cpu: access.cpu,
                    addr,
                    level: PrefetchLevel::L2,
                }),
        );
    }

    fn name(&self) -> &str {
        "ghb-pc/dc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{HierarchyConfig, MultiCpuSystem, NullPrefetcher};
    use trace::{Application, GeneratorConfig};

    fn run_pair(app: Application, n: usize) -> (memsim::RunSummary, memsim::RunSummary) {
        let gen_cfg = GeneratorConfig::default().with_cpus(2);
        let hier = HierarchyConfig::scaled();

        let mut base_sys = MultiCpuSystem::new(2, &hier);
        let mut base = NullPrefetcher::new();
        let mut stream = app.stream(21, &gen_cfg);
        let baseline = memsim::run(&mut base_sys, &mut base, &mut stream, n);

        let mut ghb_sys = MultiCpuSystem::new(2, &hier);
        let mut ghb = GhbPrefetcher::new(2, &GhbConfig::paper_large());
        let mut stream = app.stream(21, &gen_cfg);
        let with_ghb = memsim::run(&mut ghb_sys, &mut ghb, &mut stream, n);
        (baseline, with_ghb)
    }

    #[test]
    fn ghb_reduces_offchip_misses_on_scientific() {
        let (baseline, with_ghb) = run_pair(Application::Ocean, 60_000);
        assert!(
            with_ghb.l2.read_misses < baseline.l2.read_misses,
            "GHB should cover regular scientific miss streams ({} vs {})",
            with_ghb.l2.read_misses,
            baseline.l2.read_misses
        );
    }

    #[test]
    fn ghb_prefetches_into_l2_not_l1() {
        let (_, with_ghb) = run_pair(Application::Ocean, 30_000);
        assert_eq!(with_ghb.l1.prefetch_fills, 0);
        assert!(with_ghb.l2.prefetch_fills > 0);
    }

    #[test]
    fn predictor_accessors() {
        let mut ghb = GhbPrefetcher::new(2, &GhbConfig::paper_small());
        let mut sys = MultiCpuSystem::new(2, &HierarchyConfig::scaled());
        let cfg = GeneratorConfig::default().with_cpus(2);
        let mut stream = Application::Sparse.stream(2, &cfg);
        let _ = memsim::run(&mut sys, &mut ghb, &mut stream, 20_000);
        assert!(ghb.predictor(0).misses_observed() > 0);
        assert_eq!(ghb.name(), "ghb-pc/dc");
        // total_prefetches is the sum over both CPUs.
        let sum = ghb.predictor(0).prefetches_issued() + ghb.predictor(1).prefetches_issued();
        assert_eq!(ghb.total_prefetches(), sum);
    }
}
