//! Miss classification: cold, replacement, true sharing and false sharing.
//!
//! Figure 4 of the paper separates, for block sizes above 64 B, misses caused
//! by *false sharing* (a block bounced between processors although the
//! processors touch disjoint 64 B chunks of it) from all other misses.  The
//! classifier reproduces the standard approximation: when a remote write
//! invalidates a locally-cached block, it remembers which 64 B chunk the
//! writer touched; if this processor's next miss to that block is to a
//! different chunk, the miss is counted as false sharing, otherwise as true
//! sharing.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The cause assigned to a demand miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MissKind {
    /// First access by this processor to the block at this level.
    Cold,
    /// The block was previously cached but was displaced by capacity or
    /// conflict pressure.
    Replacement,
    /// The block was invalidated by a remote write to the same 64 B chunk.
    TrueSharing,
    /// The block was invalidated by a remote write to a *different* 64 B
    /// chunk — an artifact of the block size, not of actual data sharing.
    FalseSharing,
}

/// Classifies misses for one cache level across all processors.
#[derive(Debug, Clone)]
pub struct MissClassifier {
    block_bytes: u64,
    /// Per-CPU set of blocks that have been cached at some point.
    seen: Vec<HashSet<u64>>,
    /// Per-CPU map from invalidated block to the 64 B chunk address the
    /// remote writer touched.
    invalidated: Vec<HashMap<u64, u64>>,
}

impl MissClassifier {
    /// Creates a classifier for `cpus` processors at `block_bytes`
    /// granularity.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero or `block_bytes` is not a power of two.
    pub fn new(cpus: usize, block_bytes: u64) -> Self {
        assert!(cpus > 0, "need at least one cpu");
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        Self {
            block_bytes,
            seen: vec![HashSet::new(); cpus],
            invalidated: vec![HashMap::new(); cpus],
        }
    }

    fn block(&self, addr: u64) -> u64 {
        addr & !(self.block_bytes - 1)
    }

    fn chunk(addr: u64) -> u64 {
        addr & !63
    }

    /// Records that `cpu`'s copy of the block containing `addr` was
    /// invalidated because a remote processor wrote `written_addr`.
    pub fn record_invalidation(&mut self, cpu: u8, addr: u64, written_addr: u64) {
        let block = self.block(addr);
        self.invalidated[cpu as usize].insert(block, written_addr);
    }

    /// Classifies a demand miss by `cpu` to `addr` and updates history so the
    /// block is considered seen afterwards.
    pub fn classify_miss(&mut self, cpu: u8, addr: u64) -> MissKind {
        let block = self.block(addr);
        let cpu_idx = cpu as usize;
        if let Some(written) = self.invalidated[cpu_idx].remove(&block) {
            self.seen[cpu_idx].insert(block);
            if Self::chunk(written) == Self::chunk(addr) {
                return MissKind::TrueSharing;
            }
            return MissKind::FalseSharing;
        }
        if self.seen[cpu_idx].insert(block) {
            MissKind::Cold
        } else {
            MissKind::Replacement
        }
    }

    /// Marks a block as resident for `cpu` without classifying a miss (used
    /// for prefetch fills so later misses are not misreported as cold).
    pub fn note_fill(&mut self, cpu: u8, addr: u64) {
        let block = self.block(addr);
        self.seen[cpu as usize].insert(block);
    }

    /// The block granularity this classifier operates at.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }
}

/// Per-kind miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissBreakdown {
    /// Cold misses.
    pub cold: u64,
    /// Replacement (capacity/conflict) misses.
    pub replacement: u64,
    /// True-sharing coherence misses.
    pub true_sharing: u64,
    /// False-sharing coherence misses.
    pub false_sharing: u64,
}

impl MissBreakdown {
    /// Adds one miss of the given kind.
    pub fn record(&mut self, kind: MissKind) {
        match kind {
            MissKind::Cold => self.cold += 1,
            MissKind::Replacement => self.replacement += 1,
            MissKind::TrueSharing => self.true_sharing += 1,
            MissKind::FalseSharing => self.false_sharing += 1,
        }
    }

    /// Total misses across all kinds.
    pub fn total(&self) -> u64 {
        self.cold + self.replacement + self.true_sharing + self.false_sharing
    }

    /// Misses not caused by false sharing.
    pub fn other_than_false_sharing(&self) -> u64 {
        self.total() - self.false_sharing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_miss_is_cold_then_replacement() {
        let mut c = MissClassifier::new(2, 64);
        assert_eq!(c.classify_miss(0, 0x1000), MissKind::Cold);
        assert_eq!(c.classify_miss(0, 0x1000), MissKind::Replacement);
        // A different cpu still sees its own cold miss.
        assert_eq!(c.classify_miss(1, 0x1000), MissKind::Cold);
    }

    #[test]
    fn sharing_classification_same_vs_different_chunk() {
        let mut c = MissClassifier::new(2, 2048);
        // CPU 0 has block 0x0000..0x0800 cached; CPU 1 writes within it.
        assert_eq!(c.classify_miss(0, 0x0100), MissKind::Cold);
        // Remote write to the same 64B chunk that cpu0 will re-read.
        c.record_invalidation(0, 0x0100, 0x0100);
        assert_eq!(c.classify_miss(0, 0x0110), MissKind::TrueSharing);
        // Remote write to a different chunk of the same 2kB block.
        c.record_invalidation(0, 0x0100, 0x0700);
        assert_eq!(c.classify_miss(0, 0x0100), MissKind::FalseSharing);
    }

    #[test]
    fn note_fill_prevents_cold_classification() {
        let mut c = MissClassifier::new(1, 64);
        c.note_fill(0, 0x2000);
        assert_eq!(c.classify_miss(0, 0x2000), MissKind::Replacement);
    }

    #[test]
    fn breakdown_counts() {
        let mut b = MissBreakdown::default();
        b.record(MissKind::Cold);
        b.record(MissKind::FalseSharing);
        b.record(MissKind::FalseSharing);
        b.record(MissKind::Replacement);
        assert_eq!(b.total(), 4);
        assert_eq!(b.false_sharing, 2);
        assert_eq!(b.other_than_false_sharing(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_block_size_rejected() {
        let _ = MissClassifier::new(1, 100);
    }
}
