//! Miss classification: cold, replacement, true sharing and false sharing.
//!
//! Figure 4 of the paper separates, for block sizes above 64 B, misses caused
//! by *false sharing* (a block bounced between processors although the
//! processors touch disjoint 64 B chunks of it) from all other misses.  The
//! classifier reproduces the standard approximation: when a remote write
//! invalidates a locally-cached block, it remembers which 64 B chunk the
//! writer touched; if this processor's next miss to that block is to a
//! different chunk, the miss is counted as false sharing, otherwise as true
//! sharing.
//!
//! Classification is pure *accounting*: its results feed the summary's
//! [`MissBreakdown`]s and nothing else — no cache, coherence or prefetcher
//! decision ever depends on a [`MissKind`].  That independence is what the
//! segment pipeline exploits: [`MultiCpuSystem::access_deferred`]
//! (crate::system::MultiCpuSystem::access_deferred) records the per-access
//! facts the classifier needs in an [`OutcomeTape`], and a [`MissAccounting`]
//! replays the tape later (typically on another thread) with bit-identical
//! results, because [`MissAccounting::replay`] applies exactly the updates the
//! inline path applies, in exactly the same order.

use crate::config::HierarchyConfig;
use crate::fasthash::{FastMap, FastSet};
use crate::fingerprint::{scramble, FingerprintBuilder};
use serde::{Deserialize, Serialize};
use trace::MemAccess;

/// The cause assigned to a demand miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MissKind {
    /// First access by this processor to the block at this level.
    Cold,
    /// The block was previously cached but was displaced by capacity or
    /// conflict pressure.
    Replacement,
    /// The block was invalidated by a remote write to the same 64 B chunk.
    TrueSharing,
    /// The block was invalidated by a remote write to a *different* 64 B
    /// chunk — an artifact of the block size, not of actual data sharing.
    FalseSharing,
}

/// Classifies misses for one cache level across all processors.
#[derive(Debug, Clone)]
pub struct MissClassifier {
    block_bytes: u64,
    /// Per-CPU set of blocks that have been cached at some point.
    seen: Vec<FastSet<u64>>,
    /// Per-CPU map from invalidated block to the 64 B chunk address the
    /// remote writer touched.
    invalidated: Vec<FastMap<u64, u64>>,
}

impl MissClassifier {
    /// Creates a classifier for `cpus` processors at `block_bytes`
    /// granularity.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero or `block_bytes` is not a power of two.
    pub fn new(cpus: usize, block_bytes: u64) -> Self {
        assert!(cpus > 0, "need at least one cpu");
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        Self {
            block_bytes,
            seen: vec![FastSet::default(); cpus],
            invalidated: vec![FastMap::default(); cpus],
        }
    }

    fn block(&self, addr: u64) -> u64 {
        addr & !(self.block_bytes - 1)
    }

    fn chunk(addr: u64) -> u64 {
        addr & !63
    }

    /// Records that `cpu`'s copy of the block containing `addr` was
    /// invalidated because a remote processor wrote `written_addr`.
    pub fn record_invalidation(&mut self, cpu: u8, addr: u64, written_addr: u64) {
        let block = self.block(addr);
        self.invalidated[cpu as usize].insert(block, written_addr);
    }

    /// Classifies a demand miss by `cpu` to `addr` and updates history so the
    /// block is considered seen afterwards.
    pub fn classify_miss(&mut self, cpu: u8, addr: u64) -> MissKind {
        let block = self.block(addr);
        let cpu_idx = cpu as usize;
        if let Some(written) = self.invalidated[cpu_idx].remove(&block) {
            self.seen[cpu_idx].insert(block);
            if Self::chunk(written) == Self::chunk(addr) {
                return MissKind::TrueSharing;
            }
            return MissKind::FalseSharing;
        }
        if self.seen[cpu_idx].insert(block) {
            MissKind::Cold
        } else {
            MissKind::Replacement
        }
    }

    /// Marks a block as resident for `cpu` without classifying a miss (used
    /// for prefetch fills so later misses are not misreported as cold).
    pub fn note_fill(&mut self, cpu: u8, addr: u64) {
        let block = self.block(addr);
        self.seen[cpu as usize].insert(block);
    }

    /// The block granularity this classifier operates at.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Feeds the classifier's history into a state fingerprint.
    ///
    /// The per-CPU sets and maps iterate in hash order, so each entry is
    /// scrambled individually and the results combined commutatively before
    /// mixing — two classifiers with equal contents fingerprint identically
    /// regardless of insertion order.
    pub(crate) fn fingerprint_into(&self, fp: &mut FingerprintBuilder) {
        fp.mix(self.block_bytes);
        for seen in &self.seen {
            let mut sum = 0u64;
            for &block in seen {
                sum = sum.wrapping_add(scramble(block));
            }
            fp.mix(seen.len() as u64);
            fp.mix(sum);
        }
        for invalidated in &self.invalidated {
            let mut sum = 0u64;
            for (&block, &written) in invalidated {
                sum = sum.wrapping_add(scramble(scramble(block).wrapping_add(written)));
            }
            fp.mix(invalidated.len() as u64);
            fp.mix(sum);
        }
    }
}

/// Per-kind miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissBreakdown {
    /// Cold misses.
    pub cold: u64,
    /// Replacement (capacity/conflict) misses.
    pub replacement: u64,
    /// True-sharing coherence misses.
    pub true_sharing: u64,
    /// False-sharing coherence misses.
    pub false_sharing: u64,
}

impl MissBreakdown {
    /// Adds one miss of the given kind.
    pub fn record(&mut self, kind: MissKind) {
        match kind {
            MissKind::Cold => self.cold += 1,
            MissKind::Replacement => self.replacement += 1,
            MissKind::TrueSharing => self.true_sharing += 1,
            MissKind::FalseSharing => self.false_sharing += 1,
        }
    }

    /// Adds every counter of `other` into this breakdown.  Counter addition
    /// is commutative and associative, so accumulating into a local
    /// breakdown and committing it later yields the same totals as
    /// recording each miss directly.
    pub fn merge(&mut self, other: &MissBreakdown) {
        self.cold += other.cold;
        self.replacement += other.replacement;
        self.true_sharing += other.true_sharing;
        self.false_sharing += other.false_sharing;
    }

    /// Total misses across all kinds.
    pub fn total(&self) -> u64 {
        self.cold + self.replacement + self.true_sharing + self.false_sharing
    }

    /// Misses not caused by false sharing.
    pub fn other_than_false_sharing(&self) -> u64 {
        self.total() - self.false_sharing
    }

    /// Feeds the four counters into a state fingerprint.
    pub(crate) fn fingerprint_into(&self, fp: &mut FingerprintBuilder) {
        fp.mix(self.cold);
        fp.mix(self.replacement);
        fp.mix(self.true_sharing);
        fp.mix(self.false_sharing);
    }
}

/// Per-access facts recorded by the deferred-classification simulation path:
/// everything the accounting side (miss classifiers and, for timing jobs, the
/// cycle model) needs, and nothing it can recompute from the access buffer
/// itself.
///
/// The tape holds one flags byte per pulled access plus a sparse list of
/// coherence-invalidation events, so a segment's tape costs about one byte
/// per access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutcomeTape {
    flags: Vec<u8>,
    /// `(access index within this tape, invalidated cpu)`, in the exact
    /// order the inline path would call
    /// [`MissClassifier::record_invalidation`].
    invalidations: Vec<(u32, u8)>,
}

/// Decoded per-access tape flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessFlags {
    /// The access named a CPU outside the system and touched nothing.
    pub skipped: bool,
    /// The access missed in the L1.
    pub l1_miss: bool,
    /// The access went off-chip (missed both levels).
    pub offchip: bool,
}

impl OutcomeTape {
    const SKIPPED: u8 = 1;
    const L1_MISS: u8 = 2;
    const OFFCHIP: u8 = 4;

    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the tape for reuse (keeps allocations).
    pub fn clear(&mut self) {
        self.flags.clear();
        self.invalidations.clear();
    }

    /// Number of accesses recorded.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the tape records no accesses.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Records an access that was dropped for naming an unknown CPU.
    pub fn push_skipped(&mut self) {
        self.flags.push(Self::SKIPPED);
    }

    /// Records a simulated access's outcome bits.
    pub fn push_outcome(&mut self, l1_miss: bool, offchip: bool) {
        let mut flags = 0;
        if l1_miss {
            flags |= Self::L1_MISS;
        }
        if offchip {
            flags |= Self::OFFCHIP;
        }
        self.flags.push(flags);
    }

    /// Records that the most recently pushed access invalidated `cpu`'s copy
    /// of its block (had it in L1 or L2).
    ///
    /// # Panics
    ///
    /// Panics if no access has been pushed yet.
    pub fn push_invalidation(&mut self, cpu: u8) {
        let index = self.flags.len().checked_sub(1).expect("no access on tape") as u32;
        self.invalidations.push((index, cpu));
    }

    /// Decodes the flags of access `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn flags_at(&self, index: usize) -> AccessFlags {
        let flags = self.flags[index];
        AccessFlags {
            skipped: flags & Self::SKIPPED != 0,
            l1_miss: flags & Self::L1_MISS != 0,
            offchip: flags & Self::OFFCHIP != 0,
        }
    }
}

/// The accounting half of a [`MultiCpuSystem`](crate::system::MultiCpuSystem):
/// both levels' miss classifiers and the breakdowns they feed.
///
/// The system drives an embedded instance inline on the ordinary
/// [`access`](crate::system::MultiCpuSystem::access) path; the segment
/// pipeline builds a standalone instance and [`replay`](Self::replay)s each
/// segment's [`OutcomeTape`] into it on the accounting stage.  Both paths
/// perform identical updates in identical order, so the resulting
/// [`MissBreakdown`]s are bit-identical.
#[derive(Debug, Clone)]
pub struct MissAccounting {
    l1: MissClassifier,
    l2: MissClassifier,
    l1_breakdown: MissBreakdown,
    l2_breakdown: MissBreakdown,
}

impl MissAccounting {
    /// Creates accounting state for a `cpus`-processor system with the given
    /// hierarchy's block sizes.
    pub fn new(cpus: usize, config: &HierarchyConfig) -> Self {
        Self {
            l1: MissClassifier::new(cpus, config.l1.block_bytes),
            l2: MissClassifier::new(cpus, config.l2.block_bytes),
            l1_breakdown: MissBreakdown::default(),
            l2_breakdown: MissBreakdown::default(),
        }
    }

    /// Classification of L1 read misses accumulated so far.
    pub fn l1_breakdown(&self) -> &MissBreakdown {
        &self.l1_breakdown
    }

    /// Classification of off-chip read misses accumulated so far.
    pub fn l2_breakdown(&self) -> &MissBreakdown {
        &self.l2_breakdown
    }

    /// Accounts one demand access, given its outcome bits.  Returns the
    /// `(l1, l2)` miss kinds for classified read misses (what
    /// [`SystemOutcome`](crate::system::SystemOutcome) reports inline).
    pub fn on_access(
        &mut self,
        access: &MemAccess,
        l1_miss: bool,
        offchip: bool,
    ) -> (Option<MissKind>, Option<MissKind>) {
        Self::classify(
            &mut self.l1,
            &mut self.l2,
            access,
            l1_miss,
            offchip,
            &mut self.l1_breakdown,
            &mut self.l2_breakdown,
        )
    }

    /// The shared classification body: updates the classifiers in place and
    /// records kinds into the given breakdown accumulators — the struct's
    /// own breakdowns on the inline path, per-segment locals on the batched
    /// replay path.
    #[allow(clippy::too_many_arguments)]
    fn classify(
        l1: &mut MissClassifier,
        l2: &mut MissClassifier,
        access: &MemAccess,
        l1_miss: bool,
        offchip: bool,
        l1_acc: &mut MissBreakdown,
        l2_acc: &mut MissBreakdown,
    ) -> (Option<MissKind>, Option<MissKind>) {
        let l1_kind = if l1_miss && access.kind.is_read() {
            let kind = l1.classify_miss(access.cpu, access.addr);
            l1_acc.record(kind);
            Some(kind)
        } else if l1_miss {
            // Track residency for write misses without counting them in the
            // read-miss breakdown the figures report.
            l1.note_fill(access.cpu, access.addr);
            None
        } else {
            None
        };
        let l2_kind = if offchip && access.kind.is_read() {
            let kind = l2.classify_miss(access.cpu, access.addr);
            l2_acc.record(kind);
            Some(kind)
        } else if offchip {
            l2.note_fill(access.cpu, access.addr);
            None
        } else {
            None
        };
        (l1_kind, l2_kind)
    }

    /// Accounts a coherence invalidation of `cpu`'s copy of the block
    /// containing `written_addr` (the remote writer's address).
    pub fn on_invalidation(&mut self, cpu: u8, written_addr: u64) {
        self.l1.record_invalidation(cpu, written_addr, written_addr);
        self.l2.record_invalidation(cpu, written_addr, written_addr);
    }

    /// Replays one segment's tape against its access buffer, applying
    /// exactly the updates the inline path applies, in the same order.
    ///
    /// # Panics
    ///
    /// Panics if the tape does not cover `accesses` (they must come from the
    /// same deferred segment run).
    pub fn replay(&mut self, accesses: &[MemAccess], tape: &OutcomeTape) {
        self.replay_with_kinds(accesses, tape, |_, _, _| {});
    }

    /// [`replay`](Self::replay) with an observer: `observe` is called once
    /// per non-skipped access with the `(l1, l2)` miss kinds
    /// [`on_access`](Self::on_access) returns — exactly the values the
    /// inline path's [`SystemOutcome`](crate::system::SystemOutcome) would
    /// have carried for the same access (`Some` for classified read misses,
    /// `None` for hits and write misses).
    ///
    /// This is how the segment pipeline's accounting stage feeds probes that
    /// declare `wants_miss_kinds`: the kinds are recomputed here, in access
    /// order, bit-identically to the serial run.
    ///
    /// # Panics
    ///
    /// Panics if the tape does not cover `accesses` (they must come from the
    /// same deferred segment run).
    pub fn replay_with_kinds(
        &mut self,
        accesses: &[MemAccess],
        tape: &OutcomeTape,
        mut observe: impl FnMut(&MemAccess, Option<MissKind>, Option<MissKind>),
    ) {
        assert_eq!(
            accesses.len(),
            tape.len(),
            "tape and access buffer are from different segments"
        );
        // Batched walk: miss kinds accumulate into per-segment locals that
        // are committed to the breakdown structs once at the end, instead of
        // a read-modify-write on the struct fields per access.  Counter
        // addition commutes, so the committed totals are identical; the
        // classifier updates themselves still happen per access, in order.
        let mut l1_acc = MissBreakdown::default();
        let mut l2_acc = MissBreakdown::default();
        let mut invalidations = tape.invalidations.iter().peekable();
        for (index, (access, &flags)) in accesses.iter().zip(&tape.flags).enumerate() {
            if flags & OutcomeTape::SKIPPED == 0 {
                let (l1, l2) = Self::classify(
                    &mut self.l1,
                    &mut self.l2,
                    access,
                    flags & OutcomeTape::L1_MISS != 0,
                    flags & OutcomeTape::OFFCHIP != 0,
                    &mut l1_acc,
                    &mut l2_acc,
                );
                observe(access, l1, l2);
            }
            while let Some(&&(event_index, cpu)) = invalidations.peek() {
                if event_index as usize != index {
                    break;
                }
                self.on_invalidation(cpu, access.addr);
                invalidations.next();
            }
        }
        assert!(
            invalidations.next().is_none(),
            "tape records invalidations past the access buffer"
        );
        self.l1_breakdown.merge(&l1_acc);
        self.l2_breakdown.merge(&l2_acc);
    }

    /// Feeds both levels' classifier history and breakdowns into a state
    /// fingerprint.
    pub(crate) fn fingerprint_into(&self, fp: &mut FingerprintBuilder) {
        self.l1.fingerprint_into(fp);
        self.l2.fingerprint_into(fp);
        self.l1_breakdown.fingerprint_into(fp);
        self.l2_breakdown.fingerprint_into(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_miss_is_cold_then_replacement() {
        let mut c = MissClassifier::new(2, 64);
        assert_eq!(c.classify_miss(0, 0x1000), MissKind::Cold);
        assert_eq!(c.classify_miss(0, 0x1000), MissKind::Replacement);
        // A different cpu still sees its own cold miss.
        assert_eq!(c.classify_miss(1, 0x1000), MissKind::Cold);
    }

    #[test]
    fn sharing_classification_same_vs_different_chunk() {
        let mut c = MissClassifier::new(2, 2048);
        // CPU 0 has block 0x0000..0x0800 cached; CPU 1 writes within it.
        assert_eq!(c.classify_miss(0, 0x0100), MissKind::Cold);
        // Remote write to the same 64B chunk that cpu0 will re-read.
        c.record_invalidation(0, 0x0100, 0x0100);
        assert_eq!(c.classify_miss(0, 0x0110), MissKind::TrueSharing);
        // Remote write to a different chunk of the same 2kB block.
        c.record_invalidation(0, 0x0100, 0x0700);
        assert_eq!(c.classify_miss(0, 0x0100), MissKind::FalseSharing);
    }

    #[test]
    fn note_fill_prevents_cold_classification() {
        let mut c = MissClassifier::new(1, 64);
        c.note_fill(0, 0x2000);
        assert_eq!(c.classify_miss(0, 0x2000), MissKind::Replacement);
    }

    #[test]
    fn breakdown_counts() {
        let mut b = MissBreakdown::default();
        b.record(MissKind::Cold);
        b.record(MissKind::FalseSharing);
        b.record(MissKind::FalseSharing);
        b.record(MissKind::Replacement);
        assert_eq!(b.total(), 4);
        assert_eq!(b.false_sharing, 2);
        assert_eq!(b.other_than_false_sharing(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_block_size_rejected() {
        let _ = MissClassifier::new(1, 100);
    }

    #[test]
    fn replayed_tape_matches_inline_accounting() {
        use crate::config::HierarchyConfig;
        use trace::MemAccess;

        let config = HierarchyConfig::scaled();
        let accesses = vec![
            MemAccess::read(0, 0x400, 0x1000),  // L1+L2 miss
            MemAccess::write(1, 0x404, 0x1000), // write miss, invalidates cpu 0
            MemAccess::read(0, 0x408, 0x1010),  // sharing miss
            MemAccess::read(7, 0x40c, 0x2000),  // skipped (unknown cpu)
            MemAccess::read(0, 0x410, 0x1000),  // hit-ish: no miss bits
        ];

        let mut inline = MissAccounting::new(2, &config);
        let mut tape = OutcomeTape::new();
        // Access 0: read miss both levels.
        let _ = inline.on_access(&accesses[0], true, true);
        tape.push_outcome(true, true);
        // Access 1: write miss both levels, invalidating cpu 0.
        let _ = inline.on_access(&accesses[1], true, true);
        inline.on_invalidation(0, accesses[1].addr);
        tape.push_outcome(true, true);
        tape.push_invalidation(0);
        // Access 2: read miss in L1 only.
        let _ = inline.on_access(&accesses[2], true, false);
        tape.push_outcome(true, false);
        // Access 3: skipped.
        tape.push_skipped();
        // Access 4: hit.
        let _ = inline.on_access(&accesses[4], false, false);
        tape.push_outcome(false, false);

        let mut replayed = MissAccounting::new(2, &config);
        replayed.replay(&accesses, &tape);
        assert_eq!(replayed.l1_breakdown(), inline.l1_breakdown());
        assert_eq!(replayed.l2_breakdown(), inline.l2_breakdown());
        assert!(inline.l1_breakdown().true_sharing + inline.l1_breakdown().false_sharing > 0);
    }

    #[test]
    fn replay_with_kinds_reports_the_inline_kinds() {
        use crate::config::HierarchyConfig;
        use trace::MemAccess;

        let config = HierarchyConfig::scaled();
        let accesses = vec![
            MemAccess::read(0, 0x400, 0x1000),  // cold read miss
            MemAccess::write(1, 0x404, 0x1000), // write miss: kinds stay None
            MemAccess::read(0, 0x408, 0x1010),  // sharing read miss (L1 only)
            MemAccess::read(0, 0x40c, 0x1000),  // hit: kinds stay None
        ];

        // Drive the inline path and record its returned kinds.
        let mut inline = MissAccounting::new(2, &config);
        let mut tape = OutcomeTape::new();
        let mut inline_kinds = Vec::new();
        inline_kinds.push(inline.on_access(&accesses[0], true, true));
        tape.push_outcome(true, true);
        inline_kinds.push(inline.on_access(&accesses[1], true, true));
        inline.on_invalidation(0, accesses[1].addr);
        tape.push_outcome(true, true);
        tape.push_invalidation(0);
        inline_kinds.push(inline.on_access(&accesses[2], true, false));
        tape.push_outcome(true, false);
        inline_kinds.push(inline.on_access(&accesses[3], false, false));
        tape.push_outcome(false, false);

        let mut replayed = MissAccounting::new(2, &config);
        let mut observed = Vec::new();
        replayed.replay_with_kinds(&accesses, &tape, |_, l1, l2| observed.push((l1, l2)));
        assert_eq!(observed, inline_kinds);
        assert_eq!(observed[0].0, Some(MissKind::Cold));
        assert_eq!(observed[1], (None, None), "write misses report no kinds");
        assert!(observed[2].0.is_some(), "sharing miss classified on replay");
        assert_eq!(observed[3], (None, None), "hits report no kinds");
        assert_eq!(replayed.l1_breakdown(), inline.l1_breakdown());
    }

    #[test]
    fn tape_flags_round_trip() {
        let mut tape = OutcomeTape::new();
        tape.push_outcome(true, false);
        tape.push_skipped();
        tape.push_outcome(false, false);
        tape.push_outcome(true, true);
        tape.push_invalidation(1);
        assert_eq!(tape.len(), 4);
        assert!(tape.flags_at(0).l1_miss && !tape.flags_at(0).offchip);
        assert!(tape.flags_at(1).skipped);
        assert!(!tape.flags_at(2).l1_miss);
        assert!(tape.flags_at(3).offchip);
        tape.clear();
        assert!(tape.is_empty());
    }
}
