//! Trace-driven memory-hierarchy simulator used as the substrate for the
//! Spatial Memory Streaming reproduction.
//!
//! The original paper evaluates SMS with FLEXUS, a cycle-accurate full-system
//! simulator of a 16-processor directory-based shared-memory multiprocessor.
//! This crate provides the memory-system portion of that substrate as a
//! trace-driven model:
//!
//! * set-associative, write-allocate caches with LRU replacement and
//!   configurable block size ([`cache`]);
//! * a two-level private hierarchy per processor ([`hierarchy`]);
//! * a multi-processor system with write-invalidate coherence at cache-block
//!   granularity, including false-sharing detection for block sizes larger
//!   than 64 B ([`system`]);
//! * miss classification into cold / replacement / true-sharing /
//!   false-sharing categories ([`classify`]);
//! * miss-status holding registers ([`mshr`]) used by the timing model; and
//! * sectored and logically-sectored tag arrays ([`sectored`]) that model the
//!   training structures of prior spatial predictors for the paper's
//!   Figure 8 and Figure 9 comparisons.
//!
//! # Quick example
//!
//! ```
//! use memsim::{CacheConfig, HierarchyConfig, CpuHierarchy};
//! use trace::MemAccess;
//!
//! let mut cpu = CpuHierarchy::new(0, &HierarchyConfig::table1());
//! let outcome = cpu.access(&MemAccess::read(0, 0x400, 0x1000));
//! assert!(!outcome.l1_hit); // cold miss
//! let outcome = cpu.access(&MemAccess::read(0, 0x400, 0x1008));
//! assert!(outcome.l1_hit);  // same 64B block
//! assert_eq!(CacheConfig::l1_table1().block_bytes, 64);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod classify;
pub mod config;
pub mod driver;
pub mod fasthash;
pub mod fingerprint;
pub mod hierarchy;
pub mod mshr;
pub mod prefetch;
pub mod sectored;
pub mod stats;
pub mod system;

pub use cache::{AccessOutcome, CacheLineState, EvictedLine, SetAssocCache};
pub use classify::{
    AccessFlags, MissAccounting, MissBreakdown, MissClassifier, MissKind, OutcomeTape,
};
pub use config::{CacheConfig, HierarchyConfig};
pub use driver::{
    run, run_job, run_job_metered, run_metered, run_segment_deferred, run_unbatched,
    summarize_segmented, DriverMeter, DriverMetrics, PrefetcherFactory, RunSummary, SegmentCounts,
    SimJob,
};
pub use fasthash::{FastMap, FastSet, FxBuildHasher, FxHasher};
pub use fingerprint::{FingerprintBuilder, StateFingerprint};
pub use hierarchy::{CpuHierarchy, HierarchyOutcome};
pub use mshr::MshrFile;
pub use prefetch::{NullPrefetcher, PrefetchLevel, PrefetchRequest, Prefetcher};
pub use sectored::{DecoupledSectoredCache, LogicalSectoredTags, SectorEviction};
pub use stats::CacheStats;
pub use system::{MultiCpuSystem, SystemOutcome};
