//! One processor's private two-level cache hierarchy.

use crate::cache::{CacheLineState, EvictedLine, SetAssocCache};
use crate::config::HierarchyConfig;
use crate::fingerprint::FingerprintBuilder;
use crate::stats::CacheStats;
use trace::MemAccess;

/// Result of pushing one demand access through a processor's hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyOutcome {
    /// Whether the access hit in the L1.
    pub l1_hit: bool,
    /// Whether the L1 hit landed on a previously-unused prefetched line.
    pub l1_hit_on_prefetched: bool,
    /// Whether the access (having missed L1) hit in the L2.  `false` when the
    /// access hit in L1 or went off-chip.
    pub l2_hit: bool,
    /// Whether the L2 hit landed on a previously-unused prefetched line.
    pub l2_hit_on_prefetched: bool,
    /// Whether the access had to go off-chip (missed both levels).
    pub offchip: bool,
    /// Line evicted from the L1 by the demand fill, if any.
    pub l1_evicted: Option<EvictedLine>,
    /// Line evicted from the L2 by the demand fill or a write-back, if any.
    pub l2_evicted: Option<EvictedLine>,
}

impl HierarchyOutcome {
    /// Whether the access missed in the primary cache.
    pub fn l1_miss(&self) -> bool {
        !self.l1_hit
    }
}

/// A processor's private L1 + L2 hierarchy (non-inclusive, write-back,
/// write-allocate).
#[derive(Debug, Clone)]
pub struct CpuHierarchy {
    cpu: u8,
    l1: SetAssocCache,
    l2: SetAssocCache,
    l1_stats: CacheStats,
    l2_stats: CacheStats,
}

impl CpuHierarchy {
    /// Creates an empty hierarchy for processor `cpu`.
    pub fn new(cpu: u8, config: &HierarchyConfig) -> Self {
        Self {
            cpu,
            l1: SetAssocCache::new(config.l1),
            l2: SetAssocCache::new(config.l2),
            l1_stats: CacheStats::new(),
            l2_stats: CacheStats::new(),
        }
    }

    /// The processor index this hierarchy belongs to.
    pub fn cpu(&self) -> u8 {
        self.cpu
    }

    /// Counters for the primary cache.
    pub fn l1_stats(&self) -> &CacheStats {
        &self.l1_stats
    }

    /// Counters for the secondary cache.
    pub fn l2_stats(&self) -> &CacheStats {
        &self.l2_stats
    }

    /// Immutable view of the primary cache (used by predictors that need to
    /// inspect residency).
    pub fn l1(&self) -> &SetAssocCache {
        &self.l1
    }

    /// Immutable view of the secondary cache.
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }

    /// Feeds this processor's complete mutable state — both cache arrays and
    /// both statistics blocks — into a state fingerprint.
    pub(crate) fn fingerprint_into(&self, fp: &mut FingerprintBuilder) {
        fp.mix(self.cpu as u64);
        self.l1.fingerprint_into(fp);
        self.l2.fingerprint_into(fp);
        self.l1_stats.fingerprint_into(fp);
        self.l2_stats.fingerprint_into(fp);
    }

    /// Pushes one demand access through the hierarchy, updating both levels
    /// and their statistics.
    pub fn access(&mut self, access: &MemAccess) -> HierarchyOutcome {
        debug_assert_eq!(access.cpu, self.cpu, "access routed to the wrong CPU");
        self.l1_stats.accesses += 1;
        if access.kind.is_read() {
            self.l1_stats.reads += 1;
        } else {
            self.l1_stats.writes += 1;
        }

        let l1_out = self.l1.access(access.addr, access.kind);
        if l1_out.hit {
            if l1_out.hit_on_prefetched {
                self.l1_stats.prefetch_hits += 1;
            }
            return HierarchyOutcome {
                l1_hit: true,
                l1_hit_on_prefetched: l1_out.hit_on_prefetched,
                l2_hit: false,
                l2_hit_on_prefetched: false,
                offchip: false,
                l1_evicted: None,
                l2_evicted: None,
            };
        }

        // L1 miss.
        self.l1_stats.misses += 1;
        if access.kind.is_read() {
            self.l1_stats.read_misses += 1;
        } else {
            self.l1_stats.write_misses += 1;
        }
        let l1_evicted = l1_out.evicted;
        if let Some(e) = &l1_evicted {
            if e.state == CacheLineState::PrefetchedUnused {
                self.l1_stats.prefetch_unused_evictions += 1;
            }
        }

        // Probe the L2.
        self.l2_stats.accesses += 1;
        if access.kind.is_read() {
            self.l2_stats.reads += 1;
        } else {
            self.l2_stats.writes += 1;
        }
        let l2_out = self.l2.access(access.addr, access.kind);
        let mut l2_evicted = None;
        let offchip = if l2_out.hit {
            if l2_out.hit_on_prefetched {
                self.l2_stats.prefetch_hits += 1;
            }
            false
        } else {
            self.l2_stats.misses += 1;
            if access.kind.is_read() {
                self.l2_stats.read_misses += 1;
            } else {
                self.l2_stats.write_misses += 1;
            }
            l2_evicted = l2_out.evicted;
            if let Some(e) = &l2_evicted {
                if e.state == CacheLineState::PrefetchedUnused {
                    self.l2_stats.prefetch_unused_evictions += 1;
                }
            }
            true
        };

        // Write back the dirty L1 victim into the L2 (non-inclusive).
        if let Some(e) = &l1_evicted {
            if e.dirty {
                self.l1_stats.writebacks += 1;
                let wb_evicted = self.l2.fill(e.block_addr, true);
                if l2_evicted.is_none() {
                    l2_evicted = wb_evicted;
                }
            }
        }
        if let Some(e) = &l2_evicted {
            if e.dirty {
                self.l2_stats.writebacks += 1;
            }
        }

        HierarchyOutcome {
            l1_hit: false,
            l1_hit_on_prefetched: false,
            l2_hit: l2_out.hit,
            l2_hit_on_prefetched: l2_out.hit_on_prefetched,
            offchip,
            l1_evicted,
            l2_evicted,
        }
    }

    /// Streams a predicted block into the primary cache (and the L2, which
    /// the fill passes through on its way up), marking it prefetched.
    ///
    /// Returns the line displaced from the L1, if any, so that callers can
    /// end spatial region generations for the victim block.
    pub fn stream_fill(&mut self, addr: u64) -> Option<EvictedLine> {
        if self.l1.contains(addr) {
            return None;
        }
        self.l1_stats.prefetch_fills += 1;
        if !self.l2.contains(addr) {
            self.l2_stats.prefetch_fills += 1;
            let l2_victim = self.l2.prefetch_fill(addr);
            if let Some(e) = &l2_victim {
                if e.state == CacheLineState::PrefetchedUnused {
                    self.l2_stats.prefetch_unused_evictions += 1;
                }
                if e.dirty {
                    self.l2_stats.writebacks += 1;
                }
            }
        }
        let victim = self.l1.prefetch_fill(addr);
        if let Some(e) = &victim {
            if e.state == CacheLineState::PrefetchedUnused {
                self.l1_stats.prefetch_unused_evictions += 1;
            }
            if e.dirty {
                self.l1_stats.writebacks += 1;
                self.l2.fill(e.block_addr, true);
            }
        }
        victim
    }

    /// Prefetches a block into the secondary cache only (the GHB baseline is
    /// an L2 prefetcher).  Returns the displaced L2 line, if any.
    pub fn l2_prefetch_fill(&mut self, addr: u64) -> Option<EvictedLine> {
        if self.l2.contains(addr) {
            return None;
        }
        self.l2_stats.prefetch_fills += 1;
        let victim = self.l2.prefetch_fill(addr);
        if let Some(e) = &victim {
            if e.state == CacheLineState::PrefetchedUnused {
                self.l2_stats.prefetch_unused_evictions += 1;
            }
            if e.dirty {
                self.l2_stats.writebacks += 1;
            }
        }
        victim
    }

    /// Invalidates a block in both levels (coherence action).  Returns the
    /// line removed from the L1, if any, so generations can be terminated.
    pub fn invalidate(&mut self, addr: u64) -> Option<EvictedLine> {
        let l1_line = self.l1.invalidate(addr);
        if l1_line.is_some() {
            self.l1_stats.invalidations += 1;
            if l1_line.map(|l| l.state) == Some(CacheLineState::PrefetchedUnused) {
                self.l1_stats.prefetch_unused_evictions += 1;
            }
        }
        let l2_line = self.l2.invalidate(addr);
        if l2_line.is_some() {
            self.l2_stats.invalidations += 1;
            if l2_line.map(|l| l.state) == Some(CacheLineState::PrefetchedUnused) {
                self.l2_stats.prefetch_unused_evictions += 1;
            }
        }
        l1_line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn tiny_hierarchy() -> CpuHierarchy {
        CpuHierarchy::new(
            0,
            &HierarchyConfig {
                l1: CacheConfig::new(512, 2, 64),
                l2: CacheConfig::new(4096, 4, 64),
            },
        )
    }

    #[test]
    fn cold_miss_goes_offchip_then_hits() {
        let mut h = tiny_hierarchy();
        let a = MemAccess::read(0, 0x400, 0x1000);
        let out = h.access(&a);
        assert!(!out.l1_hit);
        assert!(!out.l2_hit);
        assert!(out.offchip);
        let out = h.access(&a);
        assert!(out.l1_hit);
        assert_eq!(h.l1_stats().misses, 1);
        assert_eq!(h.l2_stats().misses, 1);
    }

    #[test]
    fn l1_victim_hits_in_l2() {
        let mut h = tiny_hierarchy();
        // Fill a set of the tiny L1 (set stride 2*64=128... capacity 512B,
        // 2-way, 4 sets, stride 256B) with conflicting blocks.
        let base = 0x0u64;
        for i in 0..3 {
            let _ = h.access(&MemAccess::read(0, 0x400, base + i * 256));
        }
        // The first block was evicted from L1 but still lives in L2.
        let out = h.access(&MemAccess::read(0, 0x400, base));
        assert!(!out.l1_hit);
        assert!(out.l2_hit);
        assert!(!out.offchip);
    }

    #[test]
    fn stream_fill_covers_future_miss() {
        let mut h = tiny_hierarchy();
        h.stream_fill(0x2000);
        let out = h.access(&MemAccess::read(0, 0x400, 0x2000));
        assert!(out.l1_hit);
        assert!(out.l1_hit_on_prefetched);
        assert_eq!(h.l1_stats().prefetch_hits, 1);
        assert_eq!(h.l1_stats().misses, 0);
    }

    #[test]
    fn unused_stream_fill_counts_on_invalidation() {
        let mut h = tiny_hierarchy();
        h.stream_fill(0x2000);
        h.invalidate(0x2000);
        assert_eq!(h.l1_stats().prefetch_unused_evictions, 1);
    }

    #[test]
    fn l2_prefetch_does_not_touch_l1() {
        let mut h = tiny_hierarchy();
        h.l2_prefetch_fill(0x3000);
        assert!(!h.l1().contains(0x3000));
        assert!(h.l2().contains(0x3000));
        let out = h.access(&MemAccess::read(0, 0x400, 0x3000));
        assert!(!out.l1_hit);
        assert!(out.l2_hit);
        assert!(out.l2_hit_on_prefetched);
    }

    #[test]
    fn dirty_l1_victim_written_back_to_l2() {
        let mut h = tiny_hierarchy();
        let _ = h.access(&MemAccess::write(0, 0x400, 0x0000));
        for i in 1..3 {
            let _ = h.access(&MemAccess::read(0, 0x400, i * 256));
        }
        assert_eq!(h.l1_stats().writebacks, 1);
        // The written-back block is still present in L2.
        assert!(h.l2().contains(0x0000));
    }

    #[test]
    fn invalidate_removes_from_both_levels() {
        let mut h = tiny_hierarchy();
        let _ = h.access(&MemAccess::write(0, 0x400, 0x4000));
        let removed = h.invalidate(0x4000);
        assert!(removed.is_some());
        assert!(!h.l1().contains(0x4000));
        assert!(!h.l2().contains(0x4000));
        assert_eq!(h.l1_stats().invalidations, 1);
        assert_eq!(h.l2_stats().invalidations, 1);
    }
}
