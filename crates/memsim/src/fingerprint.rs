//! Cheap whole-state fingerprints for speculative hand-off verification.
//!
//! Speculative segment execution (the `engine` crate) hands a
//! [`MultiCpuSystem`](crate::system::MultiCpuSystem) between threads and must
//! verify, at every commit point, that the state a worker chained from is the
//! state the commit frontier actually reached.  Comparing full structs would
//! cost a deep traversal with allocation-sensitive equality; a 64-bit
//! [`StateFingerprint`] folds every mutable field of the simulation state —
//! cache lines, LRU ticks, statistics counters, classifier history — into one
//! word that can be compared in a single instruction.
//!
//! The fingerprint is **exhaustive over mutable state by construction**: each
//! module feeds its own private fields into the [`FingerprintBuilder`]
//! (`fingerprint_into` methods), so a new field added next to an existing one
//! is at least adjacent to the code that must mix it.  Equal fingerprints are
//! not a cryptographic guarantee of equal states, but the mixer is a strong
//! 64-bit hash; an accidental collision between two states a scheduler could
//! actually confuse is vanishingly unlikely, and the divergence tests below
//! pin the properties the speculation layer relies on: identical histories
//! fingerprint identically, and a single perturbed access diverges.

/// A 64-bit digest of a [`MultiCpuSystem`](crate::system::MultiCpuSystem)'s
/// complete mutable state.
///
/// Obtained from
/// [`MultiCpuSystem::fingerprint`](crate::system::MultiCpuSystem::fingerprint);
/// two systems with identical access histories always compare equal, and any
/// divergence in cache contents, LRU state, statistics or classifier history
/// changes the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateFingerprint(u64);

impl StateFingerprint {
    /// The raw 64-bit digest (for logging and diagnostics).
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for StateFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// Incremental builder for a [`StateFingerprint`].
///
/// Order-sensitive: `mix` folds each word into the running hash with an
/// Fx-style multiply-rotate, so the same words in a different order produce a
/// different digest.  For unordered collections (hash sets/maps), combine the
/// per-entry [`scramble`] values with a commutative operation first and mix
/// the combined sum plus the length.
#[derive(Debug, Clone)]
pub struct FingerprintBuilder {
    hash: u64,
}

impl FingerprintBuilder {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    /// Starts a fresh fingerprint.
    pub fn new() -> Self {
        Self { hash: Self::SEED }
    }

    /// Folds one word into the fingerprint (order-sensitive).
    #[inline]
    pub fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }

    /// Folds a boolean in as a word.
    #[inline]
    pub fn mix_bool(&mut self, flag: bool) {
        self.mix(flag as u64);
    }

    /// Finalizes the digest.
    pub fn finish(self) -> StateFingerprint {
        StateFingerprint(scramble(self.hash))
    }
}

impl Default for FingerprintBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// SplitMix64 finalizer: a strong stand-alone 64-bit scrambler.
///
/// Used to hash individual entries of unordered collections before combining
/// them commutatively, and as the final avalanche of the builder.
#[inline]
pub fn scramble(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig};
    use crate::system::MultiCpuSystem;
    use trace::MemAccess;

    fn tiny_config() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::new(1024, 2, 64),
            l2: CacheConfig::new(8192, 4, 64),
        }
    }

    fn mixed_access(i: u64) -> MemAccess {
        let cpu = (i % 2) as u8;
        let addr = (i % 37) * 64 + (i % 5) * 4096;
        if i.is_multiple_of(3) {
            MemAccess::write(cpu, 0x400 + i, addr)
        } else {
            MemAccess::read(cpu, 0x400 + i, addr)
        }
    }

    #[test]
    fn builder_is_order_sensitive() {
        let mut a = FingerprintBuilder::new();
        a.mix(1);
        a.mix(2);
        let mut b = FingerprintBuilder::new();
        b.mix(2);
        b.mix(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_and_zero_mix_differ() {
        let empty = FingerprintBuilder::new().finish();
        let mut zero = FingerprintBuilder::new();
        zero.mix(0);
        assert_ne!(empty, zero.finish());
    }

    /// The seam the speculation layer rests on: equal fingerprints on cloned
    /// systems coincide with bit-identical resumed execution.
    #[test]
    fn fingerprint_equality_matches_snapshot_resume_equivalence() {
        let mut sys = MultiCpuSystem::new(2, &tiny_config());
        for i in 0..300 {
            sys.access(&mixed_access(i));
        }
        let mut snapshot = sys.clone();
        assert_eq!(
            sys.fingerprint(),
            snapshot.fingerprint(),
            "a clone fingerprints identically"
        );

        // Resuming both from the fingerprint-equal state stays bit-identical
        // access for access, and the fingerprints track each other.
        for i in 300..600 {
            let access = mixed_access(i);
            let a = sys.access(&access);
            let b = snapshot.access(&access);
            assert_eq!(a, b);
        }
        assert_eq!(sys.fingerprint(), snapshot.fingerprint());
    }

    /// Deliberate divergence: one extra access on the clone must change the
    /// fingerprint (no false commits), even though the extra access is a
    /// cache hit that flips no statistics-visible miss counters' structure.
    #[test]
    fn single_access_divergence_is_detected() {
        let mut sys = MultiCpuSystem::new(2, &tiny_config());
        for i in 0..100 {
            sys.access(&mixed_access(i));
        }
        let mut diverged = sys.clone();
        // Re-read a resident block: hits in L1, changing only LRU/tick and
        // hit counters — the subtlest divergence the verifier must catch.
        let resident = mixed_access(99);
        diverged.access(&MemAccess::read(resident.cpu, 0x999, resident.addr));
        assert_ne!(
            sys.fingerprint(),
            diverged.fingerprint(),
            "an extra hit must change the fingerprint"
        );
    }

    #[test]
    fn different_histories_fingerprint_differently() {
        let config = tiny_config();
        let mut a = MultiCpuSystem::new(2, &config);
        let mut b = MultiCpuSystem::new(2, &config);
        for i in 0..50 {
            a.access(&mixed_access(i));
            b.access(&mixed_access(i + 1));
        }
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Fresh systems of the same shape agree.
        assert_eq!(
            MultiCpuSystem::new(2, &config).fingerprint(),
            MultiCpuSystem::new(2, &config).fingerprint()
        );
    }
}
