//! The trace-driven simulation loop.
//!
//! [`run`] pushes accesses from a stream through a [`MultiCpuSystem`], lets a
//! [`Prefetcher`] react to every outcome, applies the requested fills, and
//! accumulates a [`RunSummary`] of per-level statistics and miss breakdowns.

use crate::classify::MissBreakdown;
use crate::prefetch::{PrefetchLevel, Prefetcher};
use crate::stats::CacheStats;
use crate::system::MultiCpuSystem;
use serde::{Deserialize, Serialize};
use trace::MemAccess;

/// Aggregate results of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Number of demand accesses simulated.
    pub accesses: u64,
    /// L1 statistics summed over all processors.
    pub l1: CacheStats,
    /// L2 statistics summed over all processors.
    pub l2: CacheStats,
    /// Classification of L1 read misses.
    pub l1_breakdown: MissBreakdown,
    /// Classification of off-chip read misses.
    pub l2_breakdown: MissBreakdown,
    /// Total prefetch requests issued by the attached prefetcher.
    pub prefetch_requests: u64,
}

impl RunSummary {
    /// L1 read misses per 1000 accesses (a stand-in for the paper's misses
    /// per instruction, which differs only by a constant factor).
    pub fn l1_read_mpki(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1000.0 * self.l1.read_misses as f64 / self.accesses as f64
        }
    }

    /// Off-chip read misses per 1000 accesses.
    pub fn l2_read_mpki(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1000.0 * self.l2.read_misses as f64 / self.accesses as f64
        }
    }
}

/// Runs `num_accesses` accesses from `stream` through `system` with
/// `prefetcher` attached.
///
/// Accesses naming CPUs outside the system are skipped (the generators are
/// normally configured with the same CPU count as the system, so this is a
/// defensive measure, not an expected path).
pub fn run<S>(
    system: &mut MultiCpuSystem,
    prefetcher: &mut dyn Prefetcher,
    stream: &mut S,
    num_accesses: usize,
) -> RunSummary
where
    S: Iterator<Item = MemAccess> + ?Sized,
{
    let mut summary = RunSummary::default();
    for access in stream.take(num_accesses) {
        if (access.cpu as usize) >= system.num_cpus() {
            continue;
        }
        let outcome = system.access(&access);
        summary.accesses += 1;
        let requests = prefetcher.on_access(&access, &outcome);
        summary.prefetch_requests += requests.len() as u64;
        for req in requests {
            if (req.cpu as usize) >= system.num_cpus() {
                continue;
            }
            match req.level {
                PrefetchLevel::L1 => {
                    if let Some(victim) = system.cpu_mut(req.cpu).stream_fill(req.addr) {
                        prefetcher.on_stream_eviction(req.cpu, victim.block_addr);
                    }
                }
                PrefetchLevel::L2 => {
                    system.cpu_mut(req.cpu).l2_prefetch_fill(req.addr);
                }
            }
        }
    }
    summary.l1 = system.l1_stats_total();
    summary.l2 = system.l2_stats_total();
    summary.l1_breakdown = *system.l1_breakdown();
    summary.l2_breakdown = *system.l2_breakdown();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig};
    use crate::prefetch::{NullPrefetcher, PrefetchRequest};
    use crate::system::SystemOutcome;

    fn tiny_config() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::new(1024, 2, 64),
            l2: CacheConfig::new(8192, 4, 64),
        }
    }

    #[test]
    fn baseline_run_counts_accesses_and_misses() {
        let mut sys = MultiCpuSystem::new(1, &tiny_config());
        let mut p = NullPrefetcher::new();
        let accesses: Vec<MemAccess> = (0..100)
            .map(|i| MemAccess::read(0, 0x400, i * 64))
            .collect();
        let summary = run(&mut sys, &mut p, &mut accesses.into_iter(), 100);
        assert_eq!(summary.accesses, 100);
        assert_eq!(summary.l1.read_misses, 100);
        assert!(summary.l1_read_mpki() > 999.0);
    }

    /// A prefetcher that always requests the next sequential block.
    struct NextLine;
    impl Prefetcher for NextLine {
        fn on_access(
            &mut self,
            access: &MemAccess,
            outcome: &SystemOutcome,
        ) -> Vec<PrefetchRequest> {
            if outcome.hierarchy.l1_miss() {
                vec![PrefetchRequest {
                    cpu: access.cpu,
                    addr: access.addr + 64,
                    level: PrefetchLevel::L1,
                }]
            } else {
                Vec::new()
            }
        }
        fn name(&self) -> &str {
            "next-line"
        }
    }

    #[test]
    fn next_line_prefetcher_halves_sequential_misses() {
        let mut sys = MultiCpuSystem::new(1, &tiny_config());
        let mut p = NextLine;
        let accesses: Vec<MemAccess> = (0..200)
            .map(|i| MemAccess::read(0, 0x400, i * 64))
            .collect();
        let summary = run(&mut sys, &mut p, &mut accesses.clone().into_iter(), 200);

        let mut base_sys = MultiCpuSystem::new(1, &tiny_config());
        let mut base = NullPrefetcher::new();
        let base_summary = run(&mut base_sys, &mut base, &mut accesses.into_iter(), 200);

        assert!(summary.l1.read_misses < base_summary.l1.read_misses);
        assert!(summary.l1.prefetch_hits > 0);
        assert!(summary.prefetch_requests > 0);
    }

    #[test]
    fn accesses_to_unknown_cpus_are_skipped() {
        let mut sys = MultiCpuSystem::new(1, &tiny_config());
        let mut p = NullPrefetcher::new();
        let accesses = vec![
            MemAccess::read(7, 0x400, 0x40),
            MemAccess::read(0, 0x400, 0x80),
        ];
        let summary = run(&mut sys, &mut p, &mut accesses.into_iter(), 10);
        assert_eq!(summary.accesses, 1);
    }
}
