//! The trace-driven simulation loop.
//!
//! [`run`] pushes accesses from a stream through a [`MultiCpuSystem`], lets a
//! [`Prefetcher`] react to every outcome, applies the requested fills, and
//! accumulates a [`RunSummary`] of per-level statistics and miss breakdowns.
//! The loop is **batched**: one reusable request buffer collects every
//! access's stream requests ([`Prefetcher::on_access_into`]), so issuing
//! prefetchers stop paying one vector allocation per triggering access.  The
//! pre-batching loop survives as [`run_unbatched`], the measured "before"
//! side of the bench pipeline's hot-path comparison; both loops apply
//! requests in the same order and produce bit-identical summaries.
//!
//! [`run_job`] is the self-contained variant: a [`SimJob`] fully describes
//! one run (trace source, system, prefetcher spec, access budget) so that
//! jobs can be executed on any thread and always reproduce bit-identical
//! summaries.  The `engine` crate wraps the same job type with a plugin
//! registry and an optional timing-model evaluation.
//!
//! Telemetry follows the zero-cost-when-disabled pattern from the `metrics`
//! crate: the loop is generic over a [`DriverMeter`], the no-op meter `()`
//! compiles the instrumentation away entirely, and the metered entry points
//! ([`run_metered`], [`run_job_metered`]) collect a [`DriverMetrics`] —
//! wall-clock time, accesses/second, cache-operation and prefetch-issue
//! counts — without ever feeding anything back into the simulation.

use crate::classify::MissBreakdown;
use crate::config::HierarchyConfig;
use crate::prefetch::{NullPrefetcher, PrefetchLevel, PrefetchRequest, Prefetcher};
use crate::stats::CacheStats;
use crate::system::MultiCpuSystem;
use metrics::{per_sec, MetricsConfig, Stopwatch};
use serde::{Deserialize, Serialize, Value};
use std::io;
use trace::{MemAccess, TraceSource};

/// Aggregate results of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Number of demand accesses simulated.
    pub accesses: u64,
    /// Accesses naming CPUs outside the simulated system, dropped without
    /// touching any cache.  Always zero when the trace generator and the
    /// system agree on the processor count.
    pub skipped_accesses: u64,
    /// L1 statistics summed over all processors.
    pub l1: CacheStats,
    /// L2 statistics summed over all processors.
    pub l2: CacheStats,
    /// Classification of L1 read misses.
    pub l1_breakdown: MissBreakdown,
    /// Classification of off-chip read misses.
    pub l2_breakdown: MissBreakdown,
    /// Total prefetch requests issued by the attached prefetcher.
    pub prefetch_requests: u64,
}

impl RunSummary {
    /// L1 read misses per 1000 accesses (a stand-in for the paper's misses
    /// per instruction, which differs only by a constant factor).
    pub fn l1_read_mpki(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1000.0 * self.l1.read_misses as f64 / self.accesses as f64
        }
    }

    /// Off-chip read misses per 1000 accesses.
    pub fn l2_read_mpki(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1000.0 * self.l2.read_misses as f64 / self.accesses as f64
        }
    }
}

/// Hot-path telemetry of one driver run, collected by [`run_metered`] /
/// [`run_job_metered`] with no effect on simulated results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DriverMetrics {
    /// Wall-clock seconds spent inside the simulation loop.
    pub elapsed_seconds: f64,
    /// Demand accesses simulated per wall-clock second.
    pub accesses_per_sec: f64,
    /// Cache operations performed: demand accesses applied plus prefetch
    /// fills applied.
    pub cache_ops: u64,
    /// Prefetch fills actually applied to a cache (stream fills into the L1
    /// plus conventional fills into the L2).
    pub prefetch_issues: u64,
    /// Non-empty request batches drained from the shared request buffer.
    pub request_batches: u64,
    /// Largest single batch of requests one access produced.
    pub max_batch_len: u64,
    /// Distribution of drained batch lengths (log2 buckets); `p50`/`p99`
    /// show whether `max_batch_len` is typical or a one-off burst.
    pub batch_len_hist: metrics::Histogram,
}

impl DriverMetrics {
    /// Stamps wall-clock-derived fields from `accesses` demand accesses over
    /// `seconds` of loop time.
    fn finish(&mut self, accesses: u64, seconds: f64) {
        self.elapsed_seconds = seconds;
        self.accesses_per_sec = per_sec(accesses, seconds);
    }
}

/// Events the simulation loop reports to its (possibly no-op) meter.
///
/// The loop is generic over this trait so that the unmetered entry points
/// monomorphize with the `()` implementation below and compile every
/// callback away — disabled telemetry costs literally nothing.
pub trait DriverMeter {
    /// A demand access was applied to the system.
    fn demand_access(&mut self);
    /// A prefetch fill was applied to a cache.
    fn prefetch_issue(&mut self);
    /// One access's request batch was drained (`len > 0`).
    fn batch(&mut self, len: usize);
    /// Folds a batch of counters collected elsewhere (e.g. by a speculative
    /// worker on its own thread) into this meter.  The default is a no-op so
    /// disabled telemetry stays free; counting meters add the counter fields
    /// (wall-clock fields are stamped by the caller, not absorbed).
    fn absorb(&mut self, _delta: &DriverMetrics) {}
}

/// The no-op meter: all callbacks are empty and inline to nothing.
impl DriverMeter for () {
    #[inline(always)]
    fn demand_access(&mut self) {}
    #[inline(always)]
    fn prefetch_issue(&mut self) {}
    #[inline(always)]
    fn batch(&mut self, _len: usize) {}
}

impl DriverMeter for DriverMetrics {
    #[inline]
    fn demand_access(&mut self) {
        self.cache_ops += 1;
    }

    #[inline]
    fn prefetch_issue(&mut self) {
        self.cache_ops += 1;
        self.prefetch_issues += 1;
    }

    #[inline]
    fn batch(&mut self, len: usize) {
        self.request_batches += 1;
        self.max_batch_len = self.max_batch_len.max(len as u64);
        self.batch_len_hist.record(len as u64);
    }

    fn absorb(&mut self, delta: &DriverMetrics) {
        self.cache_ops += delta.cache_ops;
        self.prefetch_issues += delta.prefetch_issues;
        self.request_batches += delta.request_batches;
        self.max_batch_len = self.max_batch_len.max(delta.max_batch_len);
        self.batch_len_hist.merge(&delta.batch_len_hist);
    }
}

/// Builds a [`Prefetcher`] from a (typically serializable) specification.
///
/// The driver and the `engine` crate construct prefetchers from specs rather
/// than taking live instances, so a [`SimJob`] can be shipped to any worker
/// thread and instantiated there.  Implementations must be deterministic:
/// building twice from the same spec yields prefetchers with identical
/// behavior.
pub trait PrefetcherFactory {
    /// The concrete prefetcher this factory builds.
    type Output: Prefetcher;

    /// Instantiates a fresh prefetcher for a `num_cpus`-processor system.
    fn build(&self, num_cpus: usize) -> Self::Output;
}

impl<F: PrefetcherFactory> PrefetcherFactory for &F {
    type Output = F::Output;

    fn build(&self, num_cpus: usize) -> Self::Output {
        (*self).build(num_cpus)
    }
}

/// The stateless null prefetcher is its own factory.
impl PrefetcherFactory for NullPrefetcher {
    type Output = NullPrefetcher;

    fn build(&self, _num_cpus: usize) -> NullPrefetcher {
        NullPrefetcher::new()
    }
}

/// A complete, self-contained description of one simulation run: where the
/// trace comes from, what system to build, which prefetcher to attach, and
/// how many accesses to simulate.
///
/// Jobs own no live state — the access stream and the prefetcher are both
/// constructed from the job when it runs — so the same job always produces a
/// bit-identical [`RunSummary`], regardless of which thread executes it.
/// The [`TraceSource`] names either a synthetic generator (application,
/// parameters, seed) or a trace file replayed through the streaming readers
/// in `trace::io`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimJob<F> {
    /// Where the run's accesses come from (synthetic generator or file).
    pub source: TraceSource,
    /// Number of simulated processors.
    pub cpus: usize,
    /// Cache hierarchy configuration.
    pub hierarchy: HierarchyConfig,
    /// Prefetcher specification, instantiated when the job runs.
    pub prefetcher: F,
    /// Demand accesses to simulate.
    pub accesses: usize,
}

impl<F> SimJob<F> {
    /// A job over the synthetic generator for `app` (the usual path).
    pub fn synthetic(
        app: trace::Application,
        generator: trace::GeneratorConfig,
        seed: u64,
        cpus: usize,
        hierarchy: HierarchyConfig,
        prefetcher: F,
        accesses: usize,
    ) -> Self {
        Self {
            source: TraceSource::synthetic(app, generator, seed),
            cpus,
            hierarchy,
            prefetcher,
            accesses,
        }
    }
}

// The vendored serde derive does not handle generic types, so the job's
// (de)serialization over the value tree is written out by hand.  The field
// layout matches what a non-generic derive would produce.
impl<F: Serialize> Serialize for SimJob<F> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("source".to_string(), self.source.to_value()),
            ("cpus".to_string(), self.cpus.to_value()),
            ("hierarchy".to_string(), self.hierarchy.to_value()),
            ("prefetcher".to_string(), self.prefetcher.to_value()),
            ("accesses".to_string(), self.accesses.to_value()),
        ])
    }
}

impl<F: Deserialize> Deserialize for SimJob<F> {
    fn from_value(v: &Value) -> Result<Self, serde::de::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::de::Error::custom("expected object for struct SimJob"))?;
        Ok(SimJob {
            source: Deserialize::from_value(serde::field(obj, "source"))?,
            cpus: Deserialize::from_value(serde::field(obj, "cpus"))?,
            hierarchy: Deserialize::from_value(serde::field(obj, "hierarchy"))?,
            prefetcher: Deserialize::from_value(serde::field(obj, "prefetcher"))?,
            accesses: Deserialize::from_value(serde::field(obj, "accesses"))?,
        })
    }
}

/// Runs one [`SimJob`] from scratch: builds the system, instantiates the
/// prefetcher from its spec, opens the trace source, and drives [`run`].
///
/// The built prefetcher is returned alongside the summary so callers can
/// extract post-run state (predictor counters, observer histograms).
///
/// # Errors
///
/// Any I/O error from opening a file-backed trace source; synthetic sources
/// cannot fail.
pub fn run_job<F: PrefetcherFactory>(job: &SimJob<F>) -> io::Result<(RunSummary, F::Output)> {
    let mut system = MultiCpuSystem::new(job.cpus, &job.hierarchy);
    let mut prefetcher = job.prefetcher.build(job.cpus);
    let mut stream = job.source.open()?;
    let summary = run(&mut system, &mut prefetcher, &mut stream, job.accesses);
    Ok((summary, prefetcher))
}

/// [`run_job`] with telemetry: additionally collects the [`DriverMetrics`]
/// of the run (wall-clock time, accesses/second, cache-op and prefetch-issue
/// counts) when `metrics.enabled`.
///
/// The summary is bit-identical to [`run_job`]'s regardless of the metrics
/// setting — telemetry observes the run, it never influences it.
///
/// # Errors
///
/// Any I/O error from opening a file-backed trace source; synthetic sources
/// cannot fail.
pub fn run_job_metered<F: PrefetcherFactory>(
    job: &SimJob<F>,
    metrics: &MetricsConfig,
) -> io::Result<(RunSummary, F::Output, DriverMetrics)> {
    let mut system = MultiCpuSystem::new(job.cpus, &job.hierarchy);
    let mut prefetcher = job.prefetcher.build(job.cpus);
    let mut stream = job.source.open()?;
    let (summary, driver) = run_metered(
        &mut system,
        &mut prefetcher,
        &mut stream,
        job.accesses,
        metrics,
    );
    Ok((summary, prefetcher, driver))
}

/// Runs `num_accesses` accesses from `stream` through `system` with
/// `prefetcher` attached.
///
/// Accesses naming CPUs outside the system are dropped and counted in
/// [`RunSummary::skipped_accesses`] (the generators are normally configured
/// with the same CPU count as the system, so this is a defensive measure,
/// not an expected path).
pub fn run<S>(
    system: &mut MultiCpuSystem,
    prefetcher: &mut dyn Prefetcher,
    stream: &mut S,
    num_accesses: usize,
) -> RunSummary
where
    S: Iterator<Item = MemAccess> + ?Sized,
{
    // The `()` meter monomorphizes to the bare loop: no telemetry cost.
    run_with_meter(system, prefetcher, stream, num_accesses, &mut ())
}

/// [`run`] with telemetry: additionally collects a [`DriverMetrics`] when
/// `metrics.enabled` (all fields zero otherwise).  The summary is
/// bit-identical either way.
pub fn run_metered<S>(
    system: &mut MultiCpuSystem,
    prefetcher: &mut dyn Prefetcher,
    stream: &mut S,
    num_accesses: usize,
    metrics: &MetricsConfig,
) -> (RunSummary, DriverMetrics)
where
    S: Iterator<Item = MemAccess> + ?Sized,
{
    if !metrics.enabled {
        return (
            run(system, prefetcher, stream, num_accesses),
            DriverMetrics::default(),
        );
    }
    let mut driver = DriverMetrics::default();
    let watch = Stopwatch::started();
    let summary = run_with_meter(system, prefetcher, stream, num_accesses, &mut driver);
    driver.finish(summary.accesses, watch.elapsed_seconds());
    (summary, driver)
}

/// The batched simulation loop, generic over the telemetry meter.
///
/// One request buffer lives across the whole run: every access's requests
/// are appended by [`Prefetcher::on_access_into`] and drained immediately,
/// in order, so no per-access vector is ever allocated and the applied
/// request sequence is exactly what the unbatched loop produces.
fn run_with_meter<S, M>(
    system: &mut MultiCpuSystem,
    prefetcher: &mut dyn Prefetcher,
    stream: &mut S,
    num_accesses: usize,
    meter: &mut M,
) -> RunSummary
where
    S: Iterator<Item = MemAccess> + ?Sized,
    M: DriverMeter,
{
    let mut summary = RunSummary::default();
    let mut batch: Vec<PrefetchRequest> = Vec::new();
    for access in stream.take(num_accesses) {
        if (access.cpu as usize) >= system.num_cpus() {
            summary.skipped_accesses += 1;
            continue;
        }
        let outcome = system.access(&access);
        summary.accesses += 1;
        meter.demand_access();
        prefetcher.on_access_into(&access, &outcome, &mut batch);
        summary.prefetch_requests += batch.len() as u64;
        if !batch.is_empty() {
            meter.batch(batch.len());
        }
        for req in batch.drain(..) {
            if (req.cpu as usize) >= system.num_cpus() {
                continue;
            }
            meter.prefetch_issue();
            match req.level {
                PrefetchLevel::L1 => {
                    if let Some(victim) = system.cpu_mut(req.cpu).stream_fill(req.addr) {
                        prefetcher.on_stream_eviction(req.cpu, victim.block_addr);
                    }
                }
                PrefetchLevel::L2 => {
                    system.cpu_mut(req.cpu).l2_prefetch_fill(req.addr);
                }
            }
        }
    }
    summary.l1 = system.l1_stats_total();
    summary.l2 = system.l2_stats_total();
    summary.l1_breakdown = *system.l1_breakdown();
    summary.l2_breakdown = *system.l2_breakdown();
    summary
}

/// Driver-side counters of a segmented run, accumulated across segments by
/// the simulate stage (the summary fields the cache statistics do not cover).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentCounts {
    /// Demand accesses simulated so far.
    pub accesses: u64,
    /// Accesses dropped for naming CPUs outside the system.
    pub skipped_accesses: u64,
    /// Prefetch requests issued by the attached prefetcher.
    pub prefetch_requests: u64,
}

/// Runs one buffered segment through the system with classification
/// deferred onto `tape`: the cache, coherence and prefetcher updates are
/// exactly those of [`run`] over the same accesses, but the miss classifiers
/// are not touched — a standalone [`MissAccounting`](crate::classify::MissAccounting)
/// replays the tape later (typically on another thread).
///
/// `batch` is the caller's reusable request buffer and `counts` accumulates
/// across segments; both belong to the simulate stage's hand-off state.  The
/// tape is appended to, one entry per access in `accesses`.
pub fn run_segment_deferred<M: DriverMeter>(
    system: &mut MultiCpuSystem,
    prefetcher: &mut dyn Prefetcher,
    accesses: &[MemAccess],
    batch: &mut Vec<PrefetchRequest>,
    tape: &mut crate::classify::OutcomeTape,
    counts: &mut SegmentCounts,
    meter: &mut M,
) {
    for access in accesses {
        if (access.cpu as usize) >= system.num_cpus() {
            counts.skipped_accesses += 1;
            tape.push_skipped();
            continue;
        }
        let outcome = system.access_deferred(access, tape);
        counts.accesses += 1;
        meter.demand_access();
        prefetcher.on_access_into(access, &outcome, batch);
        counts.prefetch_requests += batch.len() as u64;
        if !batch.is_empty() {
            meter.batch(batch.len());
        }
        for req in batch.drain(..) {
            if (req.cpu as usize) >= system.num_cpus() {
                continue;
            }
            meter.prefetch_issue();
            match req.level {
                PrefetchLevel::L1 => {
                    if let Some(victim) = system.cpu_mut(req.cpu).stream_fill(req.addr) {
                        prefetcher.on_stream_eviction(req.cpu, victim.block_addr);
                    }
                }
                PrefetchLevel::L2 => {
                    system.cpu_mut(req.cpu).l2_prefetch_fill(req.addr);
                }
            }
        }
    }
}

/// Assembles the final [`RunSummary`] of a segmented run from its three
/// state holders: the simulate stage's system (cache statistics) and counts,
/// and the accounting stage's replayed breakdowns.
///
/// The result is field-for-field what the serial [`run`] builds at the end of
/// its loop, because each holder performed the identical updates.
pub fn summarize_segmented(
    system: &MultiCpuSystem,
    accounting: &crate::classify::MissAccounting,
    counts: &SegmentCounts,
) -> RunSummary {
    RunSummary {
        accesses: counts.accesses,
        skipped_accesses: counts.skipped_accesses,
        l1: system.l1_stats_total(),
        l2: system.l2_stats_total(),
        l1_breakdown: *accounting.l1_breakdown(),
        l2_breakdown: *accounting.l2_breakdown(),
        prefetch_requests: counts.prefetch_requests,
    }
}

/// The pre-batching simulation loop: one vector allocated per issuing access
/// via [`Prefetcher::on_access`].
///
/// Kept (not as a deprecated fossil, but deliberately) as the measured
/// **before** side of the bench pipeline's hot-path comparison; it must stay
/// bit-identical to [`run`] in simulated results, which the telemetry tests
/// assert.  New code should call [`run`].
pub fn run_unbatched<S>(
    system: &mut MultiCpuSystem,
    prefetcher: &mut dyn Prefetcher,
    stream: &mut S,
    num_accesses: usize,
) -> RunSummary
where
    S: Iterator<Item = MemAccess> + ?Sized,
{
    let mut summary = RunSummary::default();
    for access in stream.take(num_accesses) {
        if (access.cpu as usize) >= system.num_cpus() {
            summary.skipped_accesses += 1;
            continue;
        }
        let outcome = system.access(&access);
        summary.accesses += 1;
        let requests = prefetcher.on_access(&access, &outcome);
        summary.prefetch_requests += requests.len() as u64;
        for req in requests {
            if (req.cpu as usize) >= system.num_cpus() {
                continue;
            }
            match req.level {
                PrefetchLevel::L1 => {
                    if let Some(victim) = system.cpu_mut(req.cpu).stream_fill(req.addr) {
                        prefetcher.on_stream_eviction(req.cpu, victim.block_addr);
                    }
                }
                PrefetchLevel::L2 => {
                    system.cpu_mut(req.cpu).l2_prefetch_fill(req.addr);
                }
            }
        }
    }
    summary.l1 = system.l1_stats_total();
    summary.l2 = system.l2_stats_total();
    summary.l1_breakdown = *system.l1_breakdown();
    summary.l2_breakdown = *system.l2_breakdown();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig};
    use crate::prefetch::{NullPrefetcher, PrefetchRequest};
    use crate::system::SystemOutcome;

    fn tiny_config() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::new(1024, 2, 64),
            l2: CacheConfig::new(8192, 4, 64),
        }
    }

    #[test]
    fn baseline_run_counts_accesses_and_misses() {
        let mut sys = MultiCpuSystem::new(1, &tiny_config());
        let mut p = NullPrefetcher::new();
        let accesses: Vec<MemAccess> = (0..100)
            .map(|i| MemAccess::read(0, 0x400, i * 64))
            .collect();
        let summary = run(&mut sys, &mut p, &mut accesses.into_iter(), 100);
        assert_eq!(summary.accesses, 100);
        assert_eq!(summary.skipped_accesses, 0);
        assert_eq!(summary.l1.read_misses, 100);
        assert!(summary.l1_read_mpki() > 999.0);
    }

    /// A prefetcher that always requests the next sequential block.
    struct NextLine;
    impl Prefetcher for NextLine {
        fn on_access(
            &mut self,
            access: &MemAccess,
            outcome: &SystemOutcome,
        ) -> Vec<PrefetchRequest> {
            if outcome.hierarchy.l1_miss() {
                vec![PrefetchRequest {
                    cpu: access.cpu,
                    addr: access.addr + 64,
                    level: PrefetchLevel::L1,
                }]
            } else {
                Vec::new()
            }
        }
        fn name(&self) -> &str {
            "next-line"
        }
    }

    #[test]
    fn next_line_prefetcher_halves_sequential_misses() {
        let mut sys = MultiCpuSystem::new(1, &tiny_config());
        let mut p = NextLine;
        let accesses: Vec<MemAccess> = (0..200)
            .map(|i| MemAccess::read(0, 0x400, i * 64))
            .collect();
        let summary = run(&mut sys, &mut p, &mut accesses.clone().into_iter(), 200);

        let mut base_sys = MultiCpuSystem::new(1, &tiny_config());
        let mut base = NullPrefetcher::new();
        let base_summary = run(&mut base_sys, &mut base, &mut accesses.into_iter(), 200);

        assert!(summary.l1.read_misses < base_summary.l1.read_misses);
        assert!(summary.l1.prefetch_hits > 0);
        assert!(summary.prefetch_requests > 0);
    }

    #[test]
    fn accesses_to_unknown_cpus_are_skipped_and_counted() {
        let mut sys = MultiCpuSystem::new(1, &tiny_config());
        let mut p = NullPrefetcher::new();
        let accesses = vec![
            MemAccess::read(7, 0x400, 0x40),
            MemAccess::read(0, 0x400, 0x80),
        ];
        let summary = run(&mut sys, &mut p, &mut accesses.into_iter(), 10);
        assert_eq!(summary.accesses, 1);
        assert_eq!(summary.skipped_accesses, 1);
    }

    #[test]
    fn run_job_is_reproducible_and_skips_nothing() {
        let job = SimJob::synthetic(
            trace::Application::OltpDb2,
            trace::GeneratorConfig::default().with_cpus(2),
            7,
            2,
            HierarchyConfig::scaled(),
            NullPrefetcher::new(),
            5_000,
        );
        let (first, _) = run_job(&job).expect("synthetic source");
        let (second, _) = run_job(&job).expect("synthetic source");
        assert_eq!(first, second, "same job must give bit-identical summaries");
        assert_eq!(first.accesses, 5_000);
        // A well-formed job pairs generator and system CPU counts, so nothing
        // is silently dropped.
        assert_eq!(first.skipped_accesses, 0);
    }

    #[test]
    fn mismatched_generator_reports_skips() {
        // Generator emits accesses for 4 CPUs but the system only has 2:
        // roughly half the stream must be counted as skipped.
        let job = SimJob::synthetic(
            trace::Application::Ocean,
            trace::GeneratorConfig::default().with_cpus(4),
            7,
            2,
            HierarchyConfig::scaled(),
            NullPrefetcher::new(),
            4_000,
        );
        let (summary, _) = run_job(&job).expect("synthetic source");
        assert!(summary.skipped_accesses > 0, "mismatch must be visible");
        assert_eq!(summary.accesses + summary.skipped_accesses, 4_000);
    }

    #[test]
    fn sim_job_serializes_and_deserializes_by_hand_written_impls() {
        // `Option<u32>` stands in for any serializable prefetcher spec (the
        // engine uses its own spec type here).
        let job: SimJob<Option<u32>> = SimJob {
            source: TraceSource::text_file("traces/t.txt"),
            cpus: 3,
            hierarchy: HierarchyConfig::scaled(),
            prefetcher: Some(7),
            accesses: 1234,
        };
        let value = job.to_value();
        let back: SimJob<Option<u32>> = Deserialize::from_value(&value).expect("round trip");
        assert_eq!(job, back);
    }

    #[test]
    fn batched_and_unbatched_loops_agree_bit_for_bit() {
        // NextLine issues a request on every L1 miss, so both the batching
        // seam and the eviction-callback ordering are exercised.
        let accesses: Vec<MemAccess> = (0..400)
            .map(|i| MemAccess::read(0, 0x400, (i % 97) * 64))
            .collect();

        let mut sys_a = MultiCpuSystem::new(1, &tiny_config());
        let mut a_pref = NextLine;
        let batched = run(
            &mut sys_a,
            &mut a_pref,
            &mut accesses.clone().into_iter(),
            400,
        );

        let mut sys_b = MultiCpuSystem::new(1, &tiny_config());
        let mut b_pref = NextLine;
        let unbatched = run_unbatched(&mut sys_b, &mut b_pref, &mut accesses.into_iter(), 400);

        assert_eq!(batched, unbatched);
        assert!(batched.prefetch_requests > 0);
    }

    #[test]
    fn metered_run_counts_ops_without_changing_results() {
        let job = SimJob::synthetic(
            trace::Application::Sparse,
            trace::GeneratorConfig::default().with_cpus(2),
            11,
            2,
            HierarchyConfig::scaled(),
            NullPrefetcher::new(),
            5_000,
        );
        let (plain, _) = run_job(&job).expect("synthetic source");
        let (metered, _, driver) =
            run_job_metered(&job, &metrics::MetricsConfig::enabled()).expect("synthetic source");
        assert_eq!(plain, metered, "telemetry must not perturb the simulation");
        assert_eq!(driver.cache_ops, 5_000, "null prefetcher: demand ops only");
        assert_eq!(driver.prefetch_issues, 0);
        assert_eq!(driver.request_batches, 0);
        assert!(driver.elapsed_seconds > 0.0);
        assert!(driver.accesses_per_sec > 0.0);

        // Disabled collection reports all-zero metrics and the same summary.
        let (disabled, _, zeros) =
            run_job_metered(&job, &metrics::MetricsConfig::disabled()).expect("synthetic source");
        assert_eq!(plain, disabled);
        assert_eq!(zeros, DriverMetrics::default());
    }

    #[test]
    fn meter_counts_prefetch_issues_and_batches() {
        let mut sys = MultiCpuSystem::new(1, &tiny_config());
        let mut p = NextLine;
        let accesses: Vec<MemAccess> = (0..100)
            .map(|i| MemAccess::read(0, 0x400, i * 64))
            .collect();
        let (summary, driver) = run_metered(
            &mut sys,
            &mut p,
            &mut accesses.into_iter(),
            100,
            &metrics::MetricsConfig::enabled(),
        );
        assert!(summary.prefetch_requests > 0);
        assert_eq!(driver.prefetch_issues, summary.prefetch_requests);
        assert_eq!(
            driver.cache_ops,
            summary.accesses + driver.prefetch_issues,
            "cache ops = demand accesses + applied fills"
        );
        assert_eq!(driver.request_batches, summary.prefetch_requests);
        assert_eq!(
            driver.max_batch_len, 1,
            "NextLine issues one request at a time"
        );
    }

    #[test]
    fn job_with_missing_trace_file_fails_cleanly() {
        let job = SimJob {
            source: TraceSource::binary_file("/nonexistent/trace.bin"),
            cpus: 1,
            hierarchy: HierarchyConfig::scaled(),
            prefetcher: NullPrefetcher::new(),
            accesses: 100,
        };
        assert!(run_job(&job).is_err());
    }
}
