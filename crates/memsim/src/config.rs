//! Cache and hierarchy configuration.

use serde::{Deserialize, Serialize};

/// Geometry of a single set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Number of ways per set.
    pub associativity: u32,
    /// Block (line) size in bytes; must be a power of two.
    pub block_bytes: u64,
}

impl CacheConfig {
    /// Creates a configuration, validating its invariants.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, `block_bytes` or the set count is not
    /// a power of two, or the capacity is not divisible by
    /// `associativity * block_bytes`.
    pub fn new(capacity_bytes: u64, associativity: u32, block_bytes: u64) -> Self {
        let config = Self {
            capacity_bytes,
            associativity,
            block_bytes,
        };
        config.validate();
        config
    }

    fn validate(&self) {
        assert!(self.capacity_bytes > 0, "capacity must be positive");
        assert!(self.associativity > 0, "associativity must be positive");
        assert!(
            self.block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(
            self.capacity_bytes
                .is_multiple_of(u64::from(self.associativity) * self.block_bytes),
            "capacity must be a multiple of associativity * block size"
        );
        assert!(
            self.num_sets().is_power_of_two(),
            "number of sets must be a power of two"
        );
    }

    /// The paper's L1 data cache: 64 KB, 2-way, 64 B blocks (Table 1).
    pub fn l1_table1() -> Self {
        Self::new(64 * 1024, 2, 64)
    }

    /// The paper's unified L2 cache: 8 MB, 8-way, 64 B blocks (Table 1).
    pub fn l2_table1() -> Self {
        Self::new(8 * 1024 * 1024, 8, 64)
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.capacity_bytes / (u64::from(self.associativity) * self.block_bytes)
    }

    /// Total number of cache lines.
    pub fn num_lines(&self) -> u64 {
        self.capacity_bytes / self.block_bytes
    }

    /// Block-aligned address of the block containing `addr`.
    pub fn block_addr(&self, addr: u64) -> u64 {
        addr & !(self.block_bytes - 1)
    }

    /// Set index for `addr`.
    pub fn set_index(&self, addr: u64) -> u64 {
        (addr / self.block_bytes) & (self.num_sets() - 1)
    }

    /// Returns a copy of this configuration with a different block size but
    /// the same capacity and associativity (used for the block-size sweep in
    /// Figure 4).
    ///
    /// # Panics
    ///
    /// Panics if the resulting geometry is invalid.
    pub fn with_block_bytes(&self, block_bytes: u64) -> Self {
        Self::new(self.capacity_bytes, self.associativity, block_bytes)
    }
}

/// Configuration for one processor's private two-level hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Primary data cache.
    pub l1: CacheConfig,
    /// Secondary cache.
    pub l2: CacheConfig,
}

impl HierarchyConfig {
    /// The hierarchy of Table 1 in the paper.
    pub fn table1() -> Self {
        Self {
            l1: CacheConfig::l1_table1(),
            l2: CacheConfig::l2_table1(),
        }
    }

    /// A scaled-down hierarchy for laptop-scale experiments: 32 KB 2-way L1
    /// and 1 MB 8-way L2.
    ///
    /// The paper's traces span billions of instructions against an 8 MB L2;
    /// the reproduction's traces are shorter, so a proportionally smaller L2
    /// preserves the ratio of working-set size to cache capacity and keeps
    /// off-chip misses observable.
    pub fn scaled() -> Self {
        Self {
            l1: CacheConfig::new(32 * 1024, 2, 64),
            l2: CacheConfig::new(1024 * 1024, 8, 64),
        }
    }

    /// Builds a hierarchy whose caches use `block_bytes`-sized blocks but
    /// keep Table 1 capacities (for the Figure 4 block-size sweep).
    pub fn with_block_bytes(&self, block_bytes: u64) -> Self {
        Self {
            l1: self.l1.with_block_bytes(block_bytes),
            l2: self.l2.with_block_bytes(block_bytes),
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometry() {
        let l1 = CacheConfig::l1_table1();
        assert_eq!(l1.num_sets(), 512);
        assert_eq!(l1.num_lines(), 1024);
        let l2 = CacheConfig::l2_table1();
        assert_eq!(l2.num_lines(), 131072);
    }

    #[test]
    fn block_and_set_math() {
        let c = CacheConfig::new(64 * 1024, 2, 64);
        assert_eq!(c.block_addr(0x12345), 0x12340);
        assert!(c.set_index(0x12345) < c.num_sets());
        // Two addresses one set-stride apart map to the same set.
        let stride = c.num_sets() * c.block_bytes;
        assert_eq!(c.set_index(0x1000), c.set_index(0x1000 + stride));
    }

    #[test]
    fn with_block_bytes_keeps_capacity() {
        let c = CacheConfig::l1_table1().with_block_bytes(2048);
        assert_eq!(c.capacity_bytes, 64 * 1024);
        assert_eq!(c.block_bytes, 2048);
        assert_eq!(c.num_sets(), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_rejected() {
        let _ = CacheConfig::new(64 * 1024, 2, 96);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_capacity_rejected() {
        let _ = CacheConfig::new(100_000, 3, 64);
    }

    #[test]
    fn scaled_hierarchy_is_smaller() {
        let s = HierarchyConfig::scaled();
        let t = HierarchyConfig::table1();
        assert!(s.l2.capacity_bytes < t.l2.capacity_bytes);
        assert_eq!(HierarchyConfig::default(), t);
    }
}
