//! Access and miss counters for one cache.

use crate::fingerprint::FingerprintBuilder;
use serde::{Deserialize, Serialize};

/// Counters accumulated by a cache or hierarchy level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses observed (reads + writes).
    pub accesses: u64,
    /// Demand read accesses.
    pub reads: u64,
    /// Demand write accesses.
    pub writes: u64,
    /// Demand misses (reads + writes).
    pub misses: u64,
    /// Demand read misses.
    pub read_misses: u64,
    /// Demand write misses.
    pub write_misses: u64,
    /// Demand hits on blocks that were filled by a prefetch and had not yet
    /// been used (i.e. misses eliminated by prefetching).
    pub prefetch_hits: u64,
    /// Prefetched blocks evicted or invalidated before any demand use
    /// (overpredictions).
    pub prefetch_unused_evictions: u64,
    /// Prefetch fills issued to this cache.
    pub prefetch_fills: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Lines invalidated by coherence actions.
    pub invalidations: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Demand read miss rate (misses per read access); zero when no reads.
    pub fn read_miss_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_misses as f64 / self.reads as f64
        }
    }

    /// Demand miss rate over all accesses; zero when no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Feeds all eleven counters into a state fingerprint.
    pub(crate) fn fingerprint_into(&self, fp: &mut FingerprintBuilder) {
        fp.mix(self.accesses);
        fp.mix(self.reads);
        fp.mix(self.writes);
        fp.mix(self.misses);
        fp.mix(self.read_misses);
        fp.mix(self.write_misses);
        fp.mix(self.prefetch_hits);
        fp.mix(self.prefetch_unused_evictions);
        fp.mix(self.prefetch_fills);
        fp.mix(self.writebacks);
        fp.mix(self.invalidations);
    }

    /// Adds another set of counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.reads += other.reads;
        self.writes += other.writes;
        self.misses += other.misses;
        self.read_misses += other.read_misses;
        self.write_misses += other.write_misses;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_unused_evictions += other.prefetch_unused_evictions;
        self.prefetch_fills += other.prefetch_fills;
        self.writebacks += other.writebacks;
        self.invalidations += other.invalidations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = CacheStats::new();
        assert_eq!(s.read_miss_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = CacheStats {
            accesses: 10,
            reads: 8,
            misses: 5,
            read_misses: 4,
            ..Default::default()
        };
        assert!((s.read_miss_rate() - 0.5).abs() < 1e-12);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CacheStats {
            accesses: 1,
            reads: 1,
            misses: 1,
            read_misses: 1,
            prefetch_hits: 2,
            ..Default::default()
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.accesses, 2);
        assert_eq!(a.prefetch_hits, 4);
    }
}
