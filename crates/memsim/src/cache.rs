//! A set-associative, write-allocate cache with LRU replacement.
//!
//! The cache tracks, per line, whether it is dirty and whether it was filled
//! by a prefetch/stream request and has not yet been used by a demand access.
//! The latter is what the SMS coverage accounting needs: a demand access to a
//! `prefetched` line is a miss that the prefetcher eliminated, while the
//! eviction or invalidation of a still-unused `prefetched` line is an
//! overprediction.

use crate::config::CacheConfig;
use crate::fingerprint::FingerprintBuilder;
use trace::AccessKind;

/// Per-line usage state relevant to prefetch accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLineState {
    /// Filled by a demand miss (or already used by a demand access).
    Demand,
    /// Filled by a prefetch/stream and not yet referenced by a demand access.
    PrefetchedUnused,
}

/// A line evicted or invalidated from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Block-aligned address of the departed line.
    pub block_addr: u64,
    /// Whether the line was dirty (needs write-back).
    pub dirty: bool,
    /// Usage state at departure; `PrefetchedUnused` means an overprediction.
    pub state: CacheLineState,
}

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit in the cache.
    pub hit: bool,
    /// Whether the hit line had been filled by a prefetch and was unused
    /// until now (i.e. the prefetch "covered" this would-be miss).
    pub hit_on_prefetched: bool,
    /// Line evicted to make room for the fill, if the access missed and the
    /// set was full.
    pub evicted: Option<EvictedLine>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    prefetched_unused: bool,
    lru: u64,
}

impl Line {
    const INVALID: Line = Line {
        tag: 0,
        valid: false,
        dirty: false,
        prefetched_unused: false,
        lru: 0,
    };
}

/// A set-associative cache model.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let lines = vec![Line::INVALID; config.num_lines() as usize];
        Self {
            config,
            lines,
            tick: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_range(&self, addr: u64) -> std::ops::Range<usize> {
        let set = self.config.set_index(addr) as usize;
        let assoc = self.config.associativity as usize;
        set * assoc..(set + 1) * assoc
    }

    fn tag(&self, addr: u64) -> u64 {
        self.config.block_addr(addr)
    }

    fn touch(&mut self, index: usize) {
        self.tick += 1;
        self.lines[index].lru = self.tick;
    }

    fn find(&self, addr: u64) -> Option<usize> {
        let tag = self.tag(addr);
        self.set_range(addr)
            .find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    /// Returns `true` if the block containing `addr` is present.
    pub fn contains(&self, addr: u64) -> bool {
        self.find(addr).is_some()
    }

    /// Returns the usage state of the block containing `addr`, if present.
    pub fn line_state(&self, addr: u64) -> Option<CacheLineState> {
        self.find(addr).map(|i| {
            if self.lines[i].prefetched_unused {
                CacheLineState::PrefetchedUnused
            } else {
                CacheLineState::Demand
            }
        })
    }

    /// Performs a demand access (load or store) to `addr`.
    ///
    /// On a miss the block is allocated (write-allocate) and the displaced
    /// line, if any, is returned in the outcome.
    ///
    /// A *store* to a line that was filled by a prefetch and never used by a
    /// demand access counts as a miss: stream requests behave like read
    /// requests in the coherence protocol (Section 3.2 of the paper), so the
    /// streamed copy is read-only and the store must still obtain write
    /// permission.  The line is kept (no refetch of the data), but the access
    /// is reported as a miss so upgrade latency and store-buffer pressure are
    /// modelled.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessOutcome {
        if let Some(i) = self.find(addr) {
            let was_prefetched = self.lines[i].prefetched_unused;
            if kind.is_write() && was_prefetched {
                self.lines[i].prefetched_unused = false;
                self.lines[i].dirty = true;
                self.touch(i);
                return AccessOutcome {
                    hit: false,
                    hit_on_prefetched: false,
                    evicted: None,
                };
            }
            self.lines[i].prefetched_unused = false;
            if kind.is_write() {
                self.lines[i].dirty = true;
            }
            self.touch(i);
            return AccessOutcome {
                hit: true,
                hit_on_prefetched: was_prefetched,
                evicted: None,
            };
        }
        let evicted = self.fill_internal(addr, kind.is_write(), false);
        AccessOutcome {
            hit: false,
            hit_on_prefetched: false,
            evicted,
        }
    }

    /// Fills `addr` as a prefetch/stream request.  Does nothing if the block
    /// is already present.  Returns the displaced line, if any.
    pub fn prefetch_fill(&mut self, addr: u64) -> Option<EvictedLine> {
        if self.contains(addr) {
            return None;
        }
        self.fill_internal(addr, false, true)
    }

    /// Fills `addr` without counting a demand access (used for write-backs
    /// arriving from an upper level).  Does nothing if the block is already
    /// present, other than marking it dirty when `dirty` is set.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<EvictedLine> {
        if let Some(i) = self.find(addr) {
            if dirty {
                self.lines[i].dirty = true;
            }
            self.touch(i);
            return None;
        }
        self.fill_internal(addr, dirty, false)
    }

    fn fill_internal(&mut self, addr: u64, dirty: bool, prefetched: bool) -> Option<EvictedLine> {
        let tag = self.tag(addr);
        let range = self.set_range(addr);
        // Prefer an invalid way; otherwise evict the LRU way.
        let mut victim = range.start;
        let mut best_lru = u64::MAX;
        let mut found_invalid = false;
        for i in range {
            if !self.lines[i].valid {
                victim = i;
                found_invalid = true;
                break;
            }
            if self.lines[i].lru < best_lru {
                best_lru = self.lines[i].lru;
                victim = i;
            }
        }
        let evicted = if found_invalid {
            None
        } else {
            let old = self.lines[victim];
            Some(EvictedLine {
                block_addr: old.tag,
                dirty: old.dirty,
                state: if old.prefetched_unused {
                    CacheLineState::PrefetchedUnused
                } else {
                    CacheLineState::Demand
                },
            })
        };
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty,
            prefetched_unused: prefetched,
            lru: 0,
        };
        self.touch(victim);
        evicted
    }

    /// Invalidates the block containing `addr`, returning the removed line.
    pub fn invalidate(&mut self, addr: u64) -> Option<EvictedLine> {
        let i = self.find(addr)?;
        let old = self.lines[i];
        self.lines[i] = Line::INVALID;
        Some(EvictedLine {
            block_addr: old.tag,
            dirty: old.dirty,
            state: if old.prefetched_unused {
                CacheLineState::PrefetchedUnused
            } else {
                CacheLineState::Demand
            },
        })
    }

    /// Feeds every mutable field — the LRU clock and each line's tag, state
    /// bits and LRU stamp — into a state fingerprint.
    pub(crate) fn fingerprint_into(&self, fp: &mut FingerprintBuilder) {
        fp.mix(self.tick);
        fp.mix(self.lines.len() as u64);
        for line in &self.lines {
            fp.mix(line.tag);
            fp.mix_bool(line.valid);
            fp.mix_bool(line.dirty);
            fp.mix_bool(line.prefetched_unused);
            fp.mix(line.lru);
        }
    }

    /// Number of valid lines currently resident (mainly for tests/debugging).
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Iterates over the block addresses of all resident lines.
    pub fn resident_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.lines.iter().filter(|l| l.valid).map(|l| l.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64B = 512B cache.
        SetAssocCache::new(CacheConfig::new(512, 2, 64))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, AccessKind::Read).hit);
        assert!(c.access(0x1000, AccessKind::Read).hit);
        assert!(c.access(0x103f, AccessKind::Read).hit, "same block");
        assert!(!c.access(0x1040, AccessKind::Read).hit, "next block");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three blocks mapping to the same set (set stride = 4*64 = 256).
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.access(a, AccessKind::Read);
        c.access(b, AccessKind::Read);
        c.access(a, AccessKind::Read); // a is now MRU
        let out = c.access(d, AccessKind::Read);
        let evicted = out.evicted.expect("set was full");
        assert_eq!(evicted.block_addr, b, "LRU line must be evicted");
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn writes_mark_dirty_and_eviction_reports_it() {
        let mut c = tiny();
        c.access(0x0000, AccessKind::Write);
        c.access(0x0100, AccessKind::Read);
        let out = c.access(0x0200, AccessKind::Read);
        // 0x0000 was accessed first and not re-touched, so it is the LRU.
        let evicted = out.evicted.unwrap();
        assert_eq!(evicted.block_addr, 0x0000);
        assert!(evicted.dirty);
    }

    #[test]
    fn prefetch_fill_and_demand_hit() {
        let mut c = tiny();
        assert!(c.prefetch_fill(0x2000).is_none());
        assert_eq!(c.line_state(0x2000), Some(CacheLineState::PrefetchedUnused));
        let out = c.access(0x2000, AccessKind::Read);
        assert!(out.hit);
        assert!(out.hit_on_prefetched);
        // A second access is an ordinary hit.
        let out = c.access(0x2000, AccessKind::Read);
        assert!(out.hit);
        assert!(!out.hit_on_prefetched);
        assert_eq!(c.line_state(0x2000), Some(CacheLineState::Demand));
    }

    #[test]
    fn store_to_unused_prefetched_line_is_an_upgrade_miss() {
        let mut c = tiny();
        c.prefetch_fill(0x2000);
        let out = c.access(0x2000, AccessKind::Write);
        assert!(
            !out.hit,
            "streamed copies are read-only; a store must upgrade"
        );
        assert!(out.evicted.is_none(), "the data stays resident");
        // After the upgrade the line behaves like a normal dirty line.
        assert_eq!(c.line_state(0x2000), Some(CacheLineState::Demand));
        assert!(c.access(0x2000, AccessKind::Write).hit);
    }

    #[test]
    fn prefetch_fill_is_idempotent_when_present() {
        let mut c = tiny();
        c.access(0x2000, AccessKind::Read);
        assert!(c.prefetch_fill(0x2000).is_none());
        // Still counts as a demand line.
        assert_eq!(c.line_state(0x2000), Some(CacheLineState::Demand));
    }

    #[test]
    fn eviction_of_unused_prefetch_is_reported() {
        let mut c = tiny();
        c.prefetch_fill(0x0000);
        c.access(0x0100, AccessKind::Read);
        let out = c.access(0x0200, AccessKind::Read);
        let evicted = out.evicted.unwrap();
        assert_eq!(evicted.state, CacheLineState::PrefetchedUnused);
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = tiny();
        c.access(0x3000, AccessKind::Write);
        let inv = c.invalidate(0x3000).unwrap();
        assert!(inv.dirty);
        assert!(!c.contains(0x3000));
        assert!(c.invalidate(0x3000).is_none());
    }

    #[test]
    fn resident_lines_counts() {
        let mut c = tiny();
        assert_eq!(c.resident_lines(), 0);
        c.access(0x0000, AccessKind::Read);
        c.access(0x1000, AccessKind::Read);
        assert_eq!(c.resident_lines(), 2);
        let blocks: Vec<u64> = c.resident_blocks().collect();
        assert!(blocks.contains(&0x0000) && blocks.contains(&0x1000));
    }

    #[test]
    fn large_block_size_behaviour() {
        // 2kB blocks: two addresses 1kB apart share a block.
        let mut c = SetAssocCache::new(CacheConfig::new(16 * 1024, 2, 2048));
        assert!(!c.access(0x0000, AccessKind::Read).hit);
        assert!(c.access(0x0400, AccessKind::Read).hit);
    }
}
