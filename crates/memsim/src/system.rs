//! Multi-processor system with write-invalidate coherence.
//!
//! Each processor owns a private two-level hierarchy; a write by one
//! processor invalidates the block in every other processor's caches, as a
//! directory-based MOESI protocol would after granting exclusive ownership.
//! The system records, per level, a [`MissBreakdown`] that separates cold,
//! replacement, true-sharing and false-sharing misses — the categories
//! Figure 4 of the paper reports.

use crate::classify::{MissAccounting, MissBreakdown, MissKind, OutcomeTape};
use crate::config::HierarchyConfig;
use crate::fingerprint::{FingerprintBuilder, StateFingerprint};
use crate::hierarchy::{CpuHierarchy, HierarchyOutcome};
use crate::stats::CacheStats;
use trace::MemAccess;

/// Result of pushing one access through the whole system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemOutcome {
    /// The issuing processor's hierarchy outcome.
    pub hierarchy: HierarchyOutcome,
    /// Classification of the L1 miss, if the access missed in L1.
    pub l1_miss_kind: Option<MissKind>,
    /// Classification of the off-chip (L2) miss, if the access missed in L2.
    pub l2_miss_kind: Option<MissKind>,
    /// Blocks invalidated in *remote* L1 caches by this access (if a write).
    /// Each entry is `(cpu, block_addr)`.
    pub remote_invalidations: Vec<(u8, u64)>,
}

/// A shared-memory multiprocessor built from private per-CPU hierarchies.
///
/// `Clone` snapshots the complete simulation state — caches, statistics and
/// miss-accounting — so a run can be checkpointed at a segment boundary and
/// resumed bit-identically (the hand-off the segment pipeline relies on).
#[derive(Debug, Clone)]
pub struct MultiCpuSystem {
    cpus: Vec<CpuHierarchy>,
    accounting: MissAccounting,
    config: HierarchyConfig,
}

impl MultiCpuSystem {
    /// Creates a system of `num_cpus` processors with identical hierarchies.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero.
    pub fn new(num_cpus: usize, config: &HierarchyConfig) -> Self {
        assert!(num_cpus > 0, "need at least one cpu");
        let cpus = (0..num_cpus)
            .map(|cpu| CpuHierarchy::new(cpu as u8, config))
            .collect();
        Self {
            cpus,
            accounting: MissAccounting::new(num_cpus, config),
            config: *config,
        }
    }

    /// Number of processors in the system.
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// The hierarchy configuration shared by all processors.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Immutable access to one processor's hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn cpu(&self, cpu: u8) -> &CpuHierarchy {
        &self.cpus[cpu as usize]
    }

    /// Mutable access to one processor's hierarchy (used by prefetch engines
    /// to stream blocks in).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn cpu_mut(&mut self, cpu: u8) -> &mut CpuHierarchy {
        &mut self.cpus[cpu as usize]
    }

    /// Classification of L1 misses accumulated so far.
    pub fn l1_breakdown(&self) -> &MissBreakdown {
        self.accounting.l1_breakdown()
    }

    /// Classification of off-chip (L2) misses accumulated so far.
    pub fn l2_breakdown(&self) -> &MissBreakdown {
        self.accounting.l2_breakdown()
    }

    /// Aggregated L1 statistics over all processors.
    pub fn l1_stats_total(&self) -> CacheStats {
        let mut total = CacheStats::new();
        for cpu in &self.cpus {
            total.merge(cpu.l1_stats());
        }
        total
    }

    /// Aggregated L2 statistics over all processors.
    pub fn l2_stats_total(&self) -> CacheStats {
        let mut total = CacheStats::new();
        for cpu in &self.cpus {
            total.merge(cpu.l2_stats());
        }
        total
    }

    /// Digests the system's complete mutable state — every cache line, LRU
    /// stamp, statistics counter and classifier entry — into a 64-bit
    /// [`StateFingerprint`].
    ///
    /// Two systems that simulated the same access sequence from the same
    /// construction always fingerprint identically; any divergence (even one
    /// extra cache hit, which only moves LRU state) changes the value.  The
    /// speculative segment scheduler compares fingerprints at every hand-off
    /// instead of deep struct equality.  The immutable hierarchy
    /// configuration is not part of the digest.
    pub fn fingerprint(&self) -> StateFingerprint {
        let mut fp = FingerprintBuilder::new();
        fp.mix(self.cpus.len() as u64);
        for cpu in &self.cpus {
            cpu.fingerprint_into(&mut fp);
        }
        self.accounting.fingerprint_into(&mut fp);
        fp.finish()
    }

    /// Pushes one access through the issuing processor's hierarchy and
    /// applies coherence actions to the other processors.
    pub fn access(&mut self, access: &MemAccess) -> SystemOutcome {
        self.access_with(access, &mut ClassifySink::Inline)
    }

    /// [`access`](Self::access) with classification deferred: performs the
    /// identical cache and coherence state updates but records the
    /// classifier-relevant facts on `tape` instead of updating the embedded
    /// [`MissAccounting`], so a standalone accounting instance can
    /// [`replay`](MissAccounting::replay) them later — on another thread —
    /// with bit-identical breakdowns.
    ///
    /// The returned outcome reports `None` for both miss kinds (they have not
    /// been computed yet); everything a prefetcher is allowed to consume
    /// (hierarchy outcome, remote invalidations) is identical to the inline
    /// path.  (The engine only routes a job through this path when its probe
    /// declares, via `Probe::wants_miss_kinds`, that it never reads the miss
    /// kinds — true of every built-in prefetcher and probe.)
    pub fn access_deferred(&mut self, access: &MemAccess, tape: &mut OutcomeTape) -> SystemOutcome {
        self.access_with(access, &mut ClassifySink::Tape(tape))
    }

    /// The one cache + coherence body behind both access paths; only where
    /// the classification facts go differs.  Keeping a single copy is what
    /// guarantees the deferred path cannot drift from the inline path.
    fn access_with(&mut self, access: &MemAccess, sink: &mut ClassifySink<'_>) -> SystemOutcome {
        let cpu_idx = access.cpu as usize;
        assert!(cpu_idx < self.cpus.len(), "access names an unknown cpu");

        let hierarchy = self.cpus[cpu_idx].access(access);
        let (l1_miss_kind, l2_miss_kind) = match sink {
            ClassifySink::Inline => {
                self.accounting
                    .on_access(access, hierarchy.l1_miss(), hierarchy.offchip)
            }
            ClassifySink::Tape(tape) => {
                tape.push_outcome(hierarchy.l1_miss(), hierarchy.offchip);
                (None, None)
            }
        };

        // Write-invalidate coherence: remove remote copies.
        let mut remote_invalidations = Vec::new();
        if access.kind.is_write() {
            for other in 0..self.cpus.len() {
                if other == cpu_idx {
                    continue;
                }
                let other_cpu = other as u8;
                let had_l1 = self.cpus[other].l1().contains(access.addr);
                let had_l2 = self.cpus[other].l2().contains(access.addr);
                if had_l1 || had_l2 {
                    self.cpus[other].invalidate(access.addr);
                    match sink {
                        ClassifySink::Inline => {
                            self.accounting.on_invalidation(other_cpu, access.addr)
                        }
                        ClassifySink::Tape(tape) => tape.push_invalidation(other_cpu),
                    }
                    if had_l1 {
                        let block = self.config.l1.block_addr(access.addr);
                        remote_invalidations.push((other_cpu, block));
                    }
                }
            }
        }

        SystemOutcome {
            hierarchy,
            l1_miss_kind,
            l2_miss_kind,
            remote_invalidations,
        }
    }
}

/// Where [`MultiCpuSystem::access_with`] sends classification facts: into
/// the embedded accounting (ordinary path) or onto a segment's tape
/// (deferred path).
enum ClassifySink<'a> {
    Inline,
    Tape(&'a mut OutcomeTape),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn tiny_system(cpus: usize) -> MultiCpuSystem {
        MultiCpuSystem::new(
            cpus,
            &HierarchyConfig {
                l1: CacheConfig::new(1024, 2, 64),
                l2: CacheConfig::new(8192, 4, 64),
            },
        )
    }

    #[test]
    fn single_cpu_behaves_like_hierarchy() {
        let mut sys = tiny_system(1);
        let a = MemAccess::read(0, 0x400, 0x1000);
        let out = sys.access(&a);
        assert!(out.hierarchy.offchip);
        assert_eq!(out.l1_miss_kind, Some(MissKind::Cold));
        assert_eq!(out.l2_miss_kind, Some(MissKind::Cold));
        let out = sys.access(&a);
        assert!(out.hierarchy.l1_hit);
        assert!(out.l1_miss_kind.is_none());
    }

    #[test]
    fn remote_write_invalidates_and_later_miss_is_sharing() {
        let mut sys = tiny_system(2);
        let read0 = MemAccess::read(0, 0x400, 0x2000);
        sys.access(&read0);
        assert!(sys.cpu(0).l1().contains(0x2000));
        // CPU 1 writes the same 64B block.
        let write1 = MemAccess::write(1, 0x500, 0x2000);
        let out = sys.access(&write1);
        assert_eq!(out.remote_invalidations, vec![(0, 0x2000)]);
        assert!(!sys.cpu(0).l1().contains(0x2000));
        // CPU 0 re-reads: a true-sharing miss at 64B blocks.
        let out = sys.access(&read0);
        assert_eq!(out.l1_miss_kind, Some(MissKind::TrueSharing));
    }

    #[test]
    fn false_sharing_detected_with_large_blocks() {
        let mut sys = MultiCpuSystem::new(
            2,
            &HierarchyConfig {
                l1: CacheConfig::new(16 * 1024, 2, 2048),
                l2: CacheConfig::new(64 * 1024, 4, 2048),
            },
        );
        // CPU 0 reads chunk 0 of a 2kB block; CPU 1 writes chunk 16.
        sys.access(&MemAccess::read(0, 0x400, 0x8000));
        sys.access(&MemAccess::write(1, 0x500, 0x8000 + 1024));
        let out = sys.access(&MemAccess::read(0, 0x400, 0x8000));
        assert_eq!(out.l1_miss_kind, Some(MissKind::FalseSharing));
        assert_eq!(sys.l1_breakdown().false_sharing, 1);
    }

    #[test]
    fn write_misses_do_not_enter_read_breakdown() {
        let mut sys = tiny_system(1);
        sys.access(&MemAccess::write(0, 0x400, 0x3000));
        assert_eq!(sys.l1_breakdown().total(), 0);
        // But a later read to the same block is not cold (it was filled):
        // after enough conflicting fills to guarantee eviction, re-reading
        // the written block classifies as a replacement miss.
        for i in 1..=16u64 {
            sys.access(&MemAccess::read(0, 0x400, 0x3000 + i * 1024));
        }
        let out = sys.access(&MemAccess::read(0, 0x400, 0x3000));
        assert_eq!(out.l1_miss_kind, Some(MissKind::Replacement));
    }

    #[test]
    fn totals_aggregate_across_cpus() {
        let mut sys = tiny_system(2);
        sys.access(&MemAccess::read(0, 0x400, 0x1000));
        sys.access(&MemAccess::read(1, 0x400, 0x2000));
        let l1 = sys.l1_stats_total();
        assert_eq!(l1.accesses, 2);
        assert_eq!(l1.misses, 2);
    }

    #[test]
    #[should_panic(expected = "unknown cpu")]
    fn access_with_bad_cpu_panics() {
        let mut sys = tiny_system(1);
        sys.access(&MemAccess::read(5, 0x400, 0x1000));
    }

    #[test]
    fn deferred_path_matches_inline_path_bit_for_bit() {
        use crate::classify::MissAccounting;

        // A write-heavy two-CPU mix so sharing invalidations are exercised.
        let accesses: Vec<MemAccess> = (0..400u64)
            .map(|i| {
                let cpu = (i % 2) as u8;
                let addr = (i % 37) * 64 + (i % 5) * 4096;
                if i % 3 == 0 {
                    MemAccess::write(cpu, 0x400 + i, addr)
                } else {
                    MemAccess::read(cpu, 0x400 + i, addr)
                }
            })
            .collect();

        let config = HierarchyConfig {
            l1: CacheConfig::new(1024, 2, 64),
            l2: CacheConfig::new(8192, 4, 64),
        };
        let mut inline_sys = MultiCpuSystem::new(2, &config);
        let mut deferred_sys = MultiCpuSystem::new(2, &config);
        let mut accounting = MissAccounting::new(2, &config);
        let mut tape = crate::classify::OutcomeTape::new();

        for access in &accesses {
            let inline_out = inline_sys.access(access);
            let deferred_out = deferred_sys.access_deferred(access, &mut tape);
            // Everything a prefetcher may consume must be identical.
            assert_eq!(inline_out.hierarchy, deferred_out.hierarchy);
            assert_eq!(
                inline_out.remote_invalidations,
                deferred_out.remote_invalidations
            );
            assert!(deferred_out.l1_miss_kind.is_none());
        }
        accounting.replay(&accesses, &tape);

        assert_eq!(inline_sys.l1_stats_total(), deferred_sys.l1_stats_total());
        assert_eq!(inline_sys.l2_stats_total(), deferred_sys.l2_stats_total());
        assert_eq!(inline_sys.l1_breakdown(), accounting.l1_breakdown());
        assert_eq!(inline_sys.l2_breakdown(), accounting.l2_breakdown());
        assert!(inline_sys.l1_breakdown().total() > 0);
    }

    #[test]
    fn cloned_system_resumes_bit_identically() {
        // Snapshot-by-clone at an arbitrary boundary: the original and the
        // clone must agree access for access afterwards (the hand-off
        // guarantee segmented execution rests on).
        let mut sys = tiny_system(2);
        for i in 0..100u64 {
            sys.access(&MemAccess::read((i % 2) as u8, 0x400, (i % 23) * 64));
        }
        let mut snapshot = sys.clone();
        for i in 0..100u64 {
            let access = if i % 4 == 0 {
                MemAccess::write((i % 2) as u8, 0x500, (i % 19) * 64)
            } else {
                MemAccess::read((i % 2) as u8, 0x500, (i % 19) * 64)
            };
            let a = sys.access(&access);
            let b = snapshot.access(&access);
            assert_eq!(a, b);
        }
        assert_eq!(sys.l1_stats_total(), snapshot.l1_stats_total());
        assert_eq!(sys.l1_breakdown(), snapshot.l1_breakdown());
    }
}
