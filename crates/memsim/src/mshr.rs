//! Miss-status holding registers.
//!
//! The timing model uses the MSHR file to bound memory-level parallelism: a
//! miss can only be overlapped with other misses while a free MSHR exists,
//! and secondary misses to an already-outstanding block merge into the
//! existing entry.  Table 1 gives 32 MSHRs per cache plus 16 SMS stream
//! request slots.

use std::collections::HashMap;

/// A file of miss-status holding registers indexed by block address.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// Outstanding misses: block address -> number of merged requests.
    outstanding: HashMap<u64, u32>,
}

/// Result of attempting to allocate an MSHR for a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAllocation {
    /// A new entry was allocated for this block.
    Primary,
    /// The block already had an outstanding miss; the request merged.
    Secondary,
    /// No free entry: the miss must stall until one retires.
    Stall,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one entry");
        Self {
            capacity,
            outstanding: HashMap::new(),
        }
    }

    /// Attempts to track a miss for `block_addr`.
    pub fn allocate(&mut self, block_addr: u64) -> MshrAllocation {
        if let Some(count) = self.outstanding.get_mut(&block_addr) {
            *count += 1;
            return MshrAllocation::Secondary;
        }
        if self.outstanding.len() >= self.capacity {
            return MshrAllocation::Stall;
        }
        self.outstanding.insert(block_addr, 1);
        MshrAllocation::Primary
    }

    /// Retires the outstanding miss for `block_addr` (fill returned).
    ///
    /// Returns the number of merged requests satisfied, or 0 if the block
    /// had no outstanding entry.
    pub fn retire(&mut self, block_addr: u64) -> u32 {
        self.outstanding.remove(&block_addr).unwrap_or(0)
    }

    /// Number of occupied entries.
    pub fn occupancy(&self) -> usize {
        self.outstanding.len()
    }

    /// Whether a miss to `block_addr` is currently outstanding.
    pub fn is_outstanding(&self, block_addr: u64) -> bool {
        self.outstanding.contains_key(&block_addr)
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears all outstanding entries (e.g. at a sample boundary).
    pub fn clear(&mut self) {
        self.outstanding.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_secondary_and_stall() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.allocate(0x100), MshrAllocation::Primary);
        assert_eq!(m.allocate(0x100), MshrAllocation::Secondary);
        assert_eq!(m.allocate(0x200), MshrAllocation::Primary);
        assert_eq!(m.allocate(0x300), MshrAllocation::Stall);
        assert_eq!(m.occupancy(), 2);
    }

    #[test]
    fn retire_frees_entry() {
        let mut m = MshrFile::new(1);
        m.allocate(0x100);
        m.allocate(0x100);
        assert_eq!(m.retire(0x100), 2);
        assert_eq!(m.retire(0x100), 0);
        assert_eq!(m.allocate(0x200), MshrAllocation::Primary);
    }

    #[test]
    fn is_outstanding_tracks_state() {
        let mut m = MshrFile::new(4);
        assert!(!m.is_outstanding(0x40));
        m.allocate(0x40);
        assert!(m.is_outstanding(0x40));
        m.clear();
        assert!(!m.is_outstanding(0x40));
        assert_eq!(m.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
