//! A fast, deterministic hasher for the simulator's hot-path tables.
//!
//! The classifier sets, the AGT, and the unbounded PHT hash a `u64` key on
//! every miss (or every access); `std`'s default SipHash is hardening against
//! adversarial keys the simulator does not need, and its per-lookup cost is
//! measurable at trace scale.  [`FxHasher`] is the multiply-xor hash used by
//! rustc's `FxHashMap`: one rotate, one xor and one multiply per word, with
//! solid dispersion on block/region addresses (whose low bits are zero).
//!
//! Swapping hashers is behavior-preserving for every table in this workspace:
//! none of them depends on iteration order (the AGT's LRU victim scans pick a
//! unique minimum tick), so simulated results stay bit-identical — pinned by
//! the golden hashes in `tests/deterministic_replay.rs`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from Fx hashing (derived from the golden ratio, as in
/// Firefox's and rustc's FxHash).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-xor hasher for trusted keys (addresses, PCs).
///
/// Deterministic across runs and platforms — there is no random seed — which
/// also keeps hash-table layout reproducible for debugging.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // The bare multiply leaves the low output bits weak for keys sharing
        // a power-of-two factor (block and region addresses all do), and the
        // low bits are exactly what the hash table's bucket index uses.  One
        // xor-shift folds the well-mixed high bits down; measurably cheaper
        // than SipHash by a wide margin, and the dispersion test below keeps
        // it honest.
        self.hash ^ (self.hash >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// The `BuildHasher` for [`FxHasher`]-backed tables.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FastSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_dispersed() {
        let mut seen = FastSet::default();
        // Block-aligned addresses (low 6 bits zero) must not collide in the
        // low bits the table indexes with.
        let mut low_bits = HashSet::new();
        for i in 0..4096u64 {
            let key = i * 64;
            let mut a = FxHasher::default();
            a.write_u64(key);
            let mut b = FxHasher::default();
            b.write_u64(key);
            assert_eq!(a.finish(), b.finish(), "hashing must be deterministic");
            low_bits.insert(a.finish() & 0xfff);
            seen.insert(key);
        }
        assert_eq!(seen.len(), 4096);
        // A perfect hash throws 4096 balls into 4096 low-12-bit bins and
        // expects ~2590 distinct (1 - 1/e); the bare Fx multiply manages
        // only 64 on block-aligned keys.  Anything above 2300 means the
        // finalizer is doing its job.
        assert!(
            low_bits.len() > 2300,
            "low 12 bits too collision-prone: {} distinct of 4096",
            low_bits.len()
        );
    }

    #[test]
    fn write_matches_write_u64_for_whole_words() {
        let mut a = FxHasher::default();
        a.write_u64(0xdead_beef_1234_5678);
        let mut b = FxHasher::default();
        b.write(&0xdead_beef_1234_5678u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn maps_and_sets_behave_normally() {
        let mut map: FastMap<u64, u32> = FastMap::default();
        map.insert(0x1000, 1);
        map.insert(0x2000, 2);
        assert_eq!(map.get(&0x1000), Some(&1));
        assert_eq!(map.remove(&0x2000), Some(2));
        assert!(!map.contains_key(&0x2000));
    }
}
