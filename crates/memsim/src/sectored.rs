//! Sectored tag arrays used as spatial-pattern *training structures* by prior
//! work.
//!
//! The spatial footprint predictor (Kumar & Wilkerson) couples its training
//! to a *decoupled sectored* cache, and the spatial pattern predictor (Chen
//! et al.) to a *logical sectored* tag array maintained alongside a
//! conventional cache.  Both observe spatial patterns through per-sector
//! valid bits, so when accesses to different sectors interleave they suffer
//! tag conflicts that prematurely end spatial region generations and fragment
//! the recorded patterns.  The paper's Figure 8 and Figure 9 compare these
//! organizations against the decoupled Active Generation Table.
//!
//! Two structures are provided:
//!
//! * [`DecoupledSectoredCache`] — a sectored cache whose tag array both
//!   determines hits/misses *and* records patterns.  Its constrained contents
//!   produce more misses than a conventional cache of the same capacity.
//! * [`LogicalSectoredTags`] — a tag-array-only observer that tracks what a
//!   sectored cache *would* contain without influencing the real cache.
//!
//! Both emit a [`SectorEviction`] when a sector's generation ends, carrying
//! the trigger PC/offset and the accessed-block footprint, which the `sms`
//! crate converts into pattern-history-table training events.

use trace::Pc;

/// A completed sector generation: the footprint observed between the sector's
/// allocation and its eviction/invalidation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectorEviction {
    /// Base address of the sector (spatial region).
    pub region_base: u64,
    /// Program counter of the trigger access that allocated the sector.
    pub trigger_pc: Pc,
    /// Block offset (within the sector) of the trigger access.
    pub trigger_offset: u32,
    /// Offsets of all blocks accessed during the generation, in ascending
    /// order.
    pub accessed_offsets: Vec<u32>,
}

/// Outcome of a demand access presented to a sectored structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectoredAccessOutcome {
    /// Whether the access hit (sector present and block valid).  For the
    /// logical variant this is informational only.
    pub hit: bool,
    /// Whether this access allocated a new sector entry (i.e. it is the
    /// trigger access of a new sector generation).
    pub allocated_sector: bool,
    /// A generation completed by the allocation this access required, if the
    /// victim sector had recorded any accesses.
    pub completed: Option<SectorEviction>,
}

/// Per-sector valid-block bits as two inline `u64` words (pattern-style:
/// sectors span at most 128 blocks, like `sms` spatial patterns).  Inline
/// words keep the bits on the same cache line as the rest of the tag entry —
/// the `Vec<bool>` this replaces cost a heap indirection on every access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct BlockMask {
    words: [u64; 2],
}

impl BlockMask {
    const MAX_BLOCKS: usize = 128;

    fn single(offset: usize) -> Self {
        let mut mask = Self::default();
        mask.set(offset);
        mask
    }

    fn set(&mut self, offset: usize) {
        debug_assert!(offset < Self::MAX_BLOCKS);
        self.words[offset / 64] |= 1u64 << (offset % 64);
    }

    fn get(&self, offset: usize) -> bool {
        debug_assert!(offset < Self::MAX_BLOCKS);
        self.words[offset / 64] & (1u64 << (offset % 64)) != 0
    }

    fn is_empty(&self) -> bool {
        self.words == [0, 0]
    }

    /// Set offsets in ascending order via `trailing_zeros` word scans.
    fn iter_set(&self) -> impl Iterator<Item = u32> {
        self.words.into_iter().enumerate().flat_map(|(wi, word)| {
            std::iter::successors((word != 0).then_some(word), |w| {
                let next = w & (w - 1);
                (next != 0).then_some(next)
            })
            .map(move |w| wi as u32 * 64 + w.trailing_zeros())
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct SectorEntry {
    region_base: u64,
    valid_blocks: BlockMask,
    trigger_pc: Pc,
    trigger_offset: u32,
    lru: u64,
    live: bool,
}

/// Shared implementation of a set-associative array of sector tags with
/// per-block valid bits.
#[derive(Debug, Clone)]
struct SectorTagArray {
    region_bytes: u64,
    block_bytes: u64,
    sets: usize,
    assoc: usize,
    entries: Vec<SectorEntry>,
    tick: u64,
}

impl SectorTagArray {
    fn new(region_bytes: u64, block_bytes: u64, sets: usize, assoc: usize) -> Self {
        assert!(region_bytes.is_power_of_two() && block_bytes.is_power_of_two());
        assert!(
            region_bytes > block_bytes,
            "a sector must span several blocks"
        );
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(assoc >= 1);
        let blocks = (region_bytes / block_bytes) as usize;
        assert!(
            blocks <= BlockMask::MAX_BLOCKS,
            "a sector spans at most {} blocks",
            BlockMask::MAX_BLOCKS
        );
        let entries = vec![
            SectorEntry {
                region_base: 0,
                valid_blocks: BlockMask::default(),
                trigger_pc: 0,
                trigger_offset: 0,
                lru: 0,
                live: false,
            };
            sets * assoc
        ];
        Self {
            region_bytes,
            block_bytes,
            sets,
            assoc,
            entries,
            tick: 0,
        }
    }

    fn region_base(&self, addr: u64) -> u64 {
        addr & !(self.region_bytes - 1)
    }

    fn offset(&self, addr: u64) -> u32 {
        ((addr & (self.region_bytes - 1)) / self.block_bytes) as u32
    }

    fn set_of(&self, region_base: u64) -> usize {
        ((region_base / self.region_bytes) as usize) & (self.sets - 1)
    }

    fn range(&self, region_base: u64) -> std::ops::Range<usize> {
        let set = self.set_of(region_base);
        set * self.assoc..(set + 1) * self.assoc
    }

    fn find(&self, region_base: u64) -> Option<usize> {
        self.range(region_base)
            .find(|&i| self.entries[i].live && self.entries[i].region_base == region_base)
    }

    fn eviction_of(&self, i: usize) -> Option<SectorEviction> {
        let e = &self.entries[i];
        if !e.live {
            return None;
        }
        if e.valid_blocks.is_empty() {
            return None;
        }
        let accessed: Vec<u32> = e.valid_blocks.iter_set().collect();
        Some(SectorEviction {
            region_base: e.region_base,
            trigger_pc: e.trigger_pc,
            trigger_offset: e.trigger_offset,
            accessed_offsets: accessed,
        })
    }

    /// Records an access; returns (hit, completed-generation-of-victim).
    fn access(&mut self, addr: u64, pc: Pc) -> SectoredAccessOutcome {
        self.tick += 1;
        let region = self.region_base(addr);
        let offset = self.offset(addr) as usize;
        if let Some(i) = self.find(region) {
            let hit = self.entries[i].valid_blocks.get(offset);
            self.entries[i].valid_blocks.set(offset);
            self.entries[i].lru = self.tick;
            return SectoredAccessOutcome {
                hit,
                allocated_sector: false,
                completed: None,
            };
        }
        // Allocate: pick an empty way or evict the LRU sector.
        let range = self.range(region);
        let mut victim = range.start;
        let mut best = u64::MAX;
        let mut found_empty = false;
        for i in range {
            if !self.entries[i].live {
                victim = i;
                found_empty = true;
                break;
            }
            if self.entries[i].lru < best {
                best = self.entries[i].lru;
                victim = i;
            }
        }
        let completed = if found_empty {
            None
        } else {
            self.eviction_of(victim)
        };
        self.entries[victim] = SectorEntry {
            region_base: region,
            valid_blocks: BlockMask::single(offset),
            trigger_pc: pc,
            trigger_offset: offset as u32,
            lru: self.tick,
            live: true,
        };
        SectoredAccessOutcome {
            hit: false,
            allocated_sector: true,
            completed,
        }
    }

    /// Ends the generation containing `addr` due to an invalidation.
    fn invalidate(&mut self, addr: u64) -> Option<SectorEviction> {
        let region = self.region_base(addr);
        let i = self.find(region)?;
        let completed = self.eviction_of(i);
        self.entries[i].live = false;
        completed
    }

    /// Drains every live sector, returning their generations.
    fn drain(&mut self) -> Vec<SectorEviction> {
        let mut out = Vec::new();
        for i in 0..self.entries.len() {
            if let Some(e) = self.eviction_of(i) {
                out.push(e);
            }
            self.entries[i].live = false;
        }
        out
    }
}

/// A decoupled-sectored cache used simultaneously as cache and trainer.
///
/// The "decoupled" aspect (more tags than resident sectors) is modelled by
/// giving the tag array `tag_factor` times as many entries as a conventional
/// sectored cache of the same capacity would have.
#[derive(Debug, Clone)]
pub struct DecoupledSectoredCache {
    tags: SectorTagArray,
}

impl DecoupledSectoredCache {
    /// Creates a decoupled sectored cache of `capacity_bytes` with
    /// `region_bytes` sectors, `block_bytes` sub-blocks, `assoc` ways and a
    /// tag array `tag_factor` times larger than strictly needed.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero sizes, non-powers-of-two, or a
    /// capacity smaller than one sector per way).
    pub fn new(
        capacity_bytes: u64,
        region_bytes: u64,
        block_bytes: u64,
        assoc: usize,
        tag_factor: usize,
    ) -> Self {
        assert!(tag_factor >= 1);
        let sectors = capacity_bytes / region_bytes;
        assert!(
            sectors >= assoc as u64,
            "capacity must hold at least one sector per way"
        );
        let sets = ((sectors as usize * tag_factor) / assoc).next_power_of_two();
        Self {
            tags: SectorTagArray::new(region_bytes, block_bytes, sets, assoc),
        }
    }

    /// Performs a demand access.
    pub fn access(&mut self, addr: u64, pc: Pc) -> SectoredAccessOutcome {
        self.tags.access(addr, pc)
    }

    /// Applies a coherence invalidation, ending the sector's generation.
    pub fn invalidate(&mut self, addr: u64) -> Option<SectorEviction> {
        self.tags.invalidate(addr)
    }

    /// Ends all live generations (used at the end of a trace).
    pub fn drain(&mut self) -> Vec<SectorEviction> {
        self.tags.drain()
    }
}

/// A logical sectored tag array: observes the access stream and computes what
/// a sectored cache would contain, without affecting the real cache.
#[derive(Debug, Clone)]
pub struct LogicalSectoredTags {
    tags: SectorTagArray,
}

impl LogicalSectoredTags {
    /// Creates a logical tag array covering `capacity_bytes` of sectored
    /// storage with `region_bytes` sectors, `block_bytes` blocks and `assoc`
    /// ways.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry.
    pub fn new(capacity_bytes: u64, region_bytes: u64, block_bytes: u64, assoc: usize) -> Self {
        let sectors = capacity_bytes / region_bytes;
        assert!(
            sectors >= assoc as u64,
            "capacity must hold at least one sector per way"
        );
        let sets = ((sectors as usize) / assoc).next_power_of_two();
        Self {
            tags: SectorTagArray::new(region_bytes, block_bytes, sets, assoc),
        }
    }

    /// Observes a demand access from the real cache's access stream.
    pub fn observe(&mut self, addr: u64, pc: Pc) -> SectoredAccessOutcome {
        self.tags.access(addr, pc)
    }

    /// Observes a coherence invalidation.
    pub fn invalidate(&mut self, addr: u64) -> Option<SectorEviction> {
        self.tags.invalidate(addr)
    }

    /// Ends all live generations.
    pub fn drain(&mut self) -> Vec<SectorEviction> {
        self.tags.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ds() -> DecoupledSectoredCache {
        // 8kB capacity, 2kB sectors, 64B blocks, 2-way, 1x tags => 4 sectors,
        // 2 sets x 2 ways.
        DecoupledSectoredCache::new(8 * 1024, 2048, 64, 2, 1)
    }

    #[test]
    fn hit_requires_block_valid() {
        let mut ds = small_ds();
        let out = ds.access(0x0000, 0x40);
        assert!(!out.hit);
        // Same sector, different block: still a miss, but no new allocation.
        let out = ds.access(0x0040, 0x44);
        assert!(!out.hit);
        assert!(out.completed.is_none());
        // Re-access: now a hit.
        assert!(ds.access(0x0040, 0x44).hit);
    }

    #[test]
    fn conflict_eviction_emits_generation() {
        let mut ds = small_ds();
        // Sectors 0x0000, 0x1000, 0x2000 map: set = (base/2048) & 1.
        // 0x0000 -> set 0, 0x1000 -> set 0 (0x1000/0x800=2 & 1 = 0),
        // 0x2000 -> set 0 as well (4 & 1 = 0)? 4&1=0 yes. Three sectors in a
        // 2-way set force an eviction.
        ds.access(0x0000, 0x40);
        ds.access(0x0040, 0x40);
        ds.access(0x1000, 0x44);
        let out = ds.access(0x2000, 0x48);
        let completed = out.completed.expect("victim generation must complete");
        assert_eq!(completed.region_base, 0x0000);
        assert_eq!(completed.trigger_pc, 0x40);
        assert_eq!(completed.trigger_offset, 0);
        assert_eq!(completed.accessed_offsets, vec![0, 1]);
    }

    #[test]
    fn invalidation_ends_generation() {
        let mut ds = small_ds();
        ds.access(0x0000, 0x40);
        ds.access(0x0080, 0x40);
        let gen = ds.invalidate(0x0000).expect("generation should complete");
        assert_eq!(gen.accessed_offsets, vec![0, 2]);
        assert!(ds.invalidate(0x0000).is_none());
    }

    #[test]
    fn drain_returns_all_live_generations() {
        let mut ds = small_ds();
        ds.access(0x0000, 0x40);
        ds.access(0x0800, 0x44);
        let gens = ds.drain();
        assert_eq!(gens.len(), 2);
        assert!(ds.drain().is_empty());
    }

    #[test]
    fn logical_tags_track_without_affecting_caller() {
        let mut ls = LogicalSectoredTags::new(8 * 1024, 2048, 64, 2);
        assert!(!ls.observe(0x0000, 0x40).hit);
        assert!(ls.observe(0x0000, 0x40).hit);
        let gen = ls.invalidate(0x0000).unwrap();
        assert_eq!(gen.accessed_offsets, vec![0]);
    }

    #[test]
    fn decoupled_has_more_tags_than_logical() {
        // With tag_factor 4 the DS array holds sectors that a conventional
        // array would have evicted.
        let mut ds = DecoupledSectoredCache::new(4096, 2048, 64, 1, 4);
        let mut evictions = 0;
        for i in 0..4u64 {
            if ds.access(i * 2048, 0x40).completed.is_some() {
                evictions += 1;
            }
        }
        assert_eq!(evictions, 0, "4x tags should absorb 4 sectors");
    }

    #[test]
    #[should_panic(expected = "at least one sector")]
    fn tiny_capacity_rejected() {
        let _ = LogicalSectoredTags::new(1024, 2048, 64, 2);
    }
}
