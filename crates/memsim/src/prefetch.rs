//! The interface between the memory system and prefetch/streaming engines.
//!
//! A [`Prefetcher`] observes every demand access together with its
//! [`SystemOutcome`] (hits, misses, evictions, remote invalidations) and may
//! respond with fill requests targeted at the L1 (streaming, as SMS does) or
//! the L2 (conventional prefetching, as the GHB baseline does).  The
//! [`driver`](crate::driver) applies those fills and reports back any lines
//! they displace, so predictors that track cache contents (such as the SMS
//! active generation table) stay consistent.

use crate::system::SystemOutcome;
use trace::MemAccess;

/// Which cache level a prefetch request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchLevel {
    /// Stream directly into the primary cache (SMS).
    L1,
    /// Prefetch into the secondary cache only (GHB).
    L2,
}

/// A single block-fill request issued by a prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Processor whose cache should receive the block.
    pub cpu: u8,
    /// Byte address within the requested block.
    pub addr: u64,
    /// Target level.
    pub level: PrefetchLevel,
}

/// A prefetch or streaming engine attached to the simulated memory system.
///
/// Implementations hold per-processor state internally; the driver calls them
/// with accesses from all processors in global order.
pub trait Prefetcher {
    /// Observes a demand access and its outcome; returns blocks to fetch.
    fn on_access(&mut self, access: &MemAccess, outcome: &SystemOutcome) -> Vec<PrefetchRequest>;

    /// Batched variant of [`on_access`](Prefetcher::on_access): appends this
    /// access's requests to `out` instead of allocating a fresh vector.
    ///
    /// The driver's hot loop owns one request buffer, drains it after every
    /// access, and hands it back here, so issuing prefetchers stop paying one
    /// allocation per triggering access.  Requests must be appended in the
    /// same order `on_access` would return them — the driver applies them in
    /// order, and simulation results must not depend on which entry point ran.
    /// The default forwards to `on_access`; hot prefetchers override it.
    fn on_access_into(
        &mut self,
        access: &MemAccess,
        outcome: &SystemOutcome,
        out: &mut Vec<PrefetchRequest>,
    ) {
        out.extend(self.on_access(access, outcome));
    }

    /// Notifies the prefetcher that applying one of its own fills displaced
    /// `block_addr` from `cpu`'s primary cache.
    fn on_stream_eviction(&mut self, _cpu: u8, _block_addr: u64) {}

    /// A short name for reports.
    fn name(&self) -> &str;
}

/// A prefetcher that never prefetches; used for baseline runs.
#[derive(Debug, Default, Clone)]
pub struct NullPrefetcher;

impl NullPrefetcher {
    /// Creates the null prefetcher.
    pub fn new() -> Self {
        Self
    }
}

impl Prefetcher for NullPrefetcher {
    fn on_access(&mut self, _access: &MemAccess, _outcome: &SystemOutcome) -> Vec<PrefetchRequest> {
        Vec::new()
    }

    fn on_access_into(
        &mut self,
        _access: &MemAccess,
        _outcome: &SystemOutcome,
        _out: &mut Vec<PrefetchRequest>,
    ) {
    }

    fn name(&self) -> &str {
        "baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;
    use crate::system::MultiCpuSystem;

    #[test]
    fn null_prefetcher_is_silent() {
        let mut sys = MultiCpuSystem::new(1, &HierarchyConfig::scaled());
        let mut p = NullPrefetcher::new();
        let a = MemAccess::read(0, 0x400, 0x1000);
        let out = sys.access(&a);
        assert!(p.on_access(&a, &out).is_empty());
        assert_eq!(p.name(), "baseline");
    }
}
