//! Server lifecycle coverage: byte-identity with the direct engine path,
//! cache-hit replay, quota enforcement, structured errors, and graceful
//! shutdown draining the queue.

use engine::{EngineConfig, JobList, PrefetcherSpec, Registry, SimJob};
use memsim::HierarchyConfig;
use server::{client, Endpoint, ErrorFrame, Server, ServerConfig, ServerError, SubmitOptions};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use trace::{Application, GeneratorConfig};

fn unique_socket(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "sms-lifecycle-{tag}-{}-{}.sock",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn job(app: Application, prefetcher: PrefetcherSpec, accesses: usize) -> SimJob {
    SimJob::new(memsim::SimJob::synthetic(
        app,
        GeneratorConfig::default().with_cpus(2),
        2006,
        2,
        HierarchyConfig::scaled(),
        prefetcher,
        accesses,
    ))
}

fn job_list(accesses: usize) -> JobList {
    JobList::new(vec![
        job(Application::OltpDb2, PrefetcherSpec::null(), accesses),
        job(
            Application::OltpDb2,
            PrefetcherSpec::sms_paper_default(),
            accesses,
        ),
    ])
}

fn start_unix(tag: &str, config: ServerConfig) -> (Server, Endpoint) {
    let socket = unique_socket(tag);
    let server = Server::start(ServerConfig {
        unix_socket: Some(socket.clone()),
        ..config
    })
    .expect("server starts");
    (server, Endpoint::Unix(socket))
}

#[test]
fn served_results_are_byte_identical_to_a_direct_run() {
    let list = job_list(6_000);
    let config = EngineConfig::with_workers(2);
    let direct = engine::run_jobs_in(&list.jobs, &config, Registry::builtin()).expect("direct run");
    let direct_json = serde_json::to_string_pretty(&direct).expect("serialize direct");

    let (server, endpoint) = start_unix("bytes", ServerConfig::default());
    let options = SubmitOptions {
        workers: 2,
        ..SubmitOptions::default()
    };
    let mut streamed_indices = Vec::new();
    let outcome = client::submit(&endpoint, &list, &options, &mut |frame| {
        streamed_indices.push(frame.result.job_index);
    })
    .expect("submission succeeds");

    // Streamed strictly in submission order, metrics attached per job.
    assert_eq!(streamed_indices, vec![0, 1]);
    assert!(!outcome.accepted.cache_hit);
    assert!(!outcome.done.cache_hit);
    assert_eq!(outcome.done.jobs, 2);
    assert!(outcome.frames.iter().all(|f| f.metrics.accesses > 0));

    // The served result bytes are exactly what `run --spec --out` writes.
    let served: Vec<engine::JobResult> = outcome.frames.iter().map(|f| f.result.clone()).collect();
    let served_json = serde_json::to_string_pretty(&served).expect("serialize served");
    assert_eq!(served_json, direct_json);

    let metrics = server.shutdown();
    assert_eq!(metrics.submissions, 1);
    assert_eq!(metrics.jobs_served, 2);
    assert_eq!(metrics.cache_misses, 1);
    assert_eq!(metrics.cache_hits, 0);
    assert!(metrics.report().validate().is_ok());
}

#[test]
fn identical_resubmission_is_a_cache_hit_with_identical_bytes() {
    let list = job_list(5_000);
    let (server, endpoint) = start_unix("cache", ServerConfig::default());
    let options = SubmitOptions {
        workers: 2,
        ..SubmitOptions::default()
    };

    let first = client::submit(&endpoint, &list, &options, &mut |_| {}).expect("first submission");
    assert!(!first.done.cache_hit);

    // Same spec, different client and priority: still the same fingerprint.
    let resubmit_options = SubmitOptions {
        client: "someone-else".to_string(),
        priority: 9,
        workers: 2,
        ..SubmitOptions::default()
    };
    let second =
        client::submit(&endpoint, &list, &resubmit_options, &mut |_| {}).expect("resubmission");
    assert!(second.accepted.cache_hit, "second submission must hit");
    assert!(second.done.cache_hit);
    assert_eq!(second.frames, first.frames, "replayed frames are identical");

    // A different worker count is not part of the identity either.
    let other_workers = SubmitOptions {
        workers: 1,
        ..SubmitOptions::default()
    };
    let third =
        client::submit(&endpoint, &list, &other_workers, &mut |_| {}).expect("third submission");
    assert!(third.accepted.cache_hit);

    // But a different segment size is: it must miss and recompute.
    let segmented = SubmitOptions {
        workers: 2,
        segment_size: 2_000,
        ..SubmitOptions::default()
    };
    let fourth =
        client::submit(&endpoint, &list, &segmented, &mut |_| {}).expect("segmented submission");
    assert!(!fourth.accepted.cache_hit);
    assert_eq!(
        fourth
            .frames
            .iter()
            .map(|f| f.result.clone())
            .collect::<Vec<_>>(),
        first
            .frames
            .iter()
            .map(|f| f.result.clone())
            .collect::<Vec<_>>(),
        "segmentation is an execution strategy, not a behavior change"
    );

    let metrics = server.shutdown();
    assert_eq!(metrics.submissions, 4);
    assert_eq!(metrics.cache_hits, 2);
    assert_eq!(metrics.cache_misses, 2);
    assert_eq!(metrics.cache_entries, 2);
    assert_eq!(metrics.jobs_served, 4, "only the two misses ran");
    assert_eq!(metrics.results_streamed, 8);
}

#[test]
fn quota_exceeded_is_a_structured_error() {
    let (server, endpoint) = start_unix(
        "quota",
        ServerConfig {
            quota: 3,
            ..ServerConfig::default()
        },
    );

    // Two jobs fit the quota of three...
    let small = job_list(2_000);
    client::submit(&endpoint, &small, &SubmitOptions::default(), &mut |_| {})
        .expect("within quota");

    // ...four do not, even for a fresh client with nothing outstanding.
    let big = JobList::new(vec![
        job(Application::OltpDb2, PrefetcherSpec::null(), 2_000),
        job(Application::Ocean, PrefetcherSpec::null(), 2_000),
        job(Application::Sparse, PrefetcherSpec::null(), 2_000),
        job(Application::DssQry1, PrefetcherSpec::null(), 2_000),
    ]);
    let err = client::submit(&endpoint, &big, &SubmitOptions::default(), &mut |_| {})
        .expect_err("over quota");
    match err {
        client::ClientError::Server(frame) => {
            assert_eq!(frame.code, ErrorFrame::QUOTA_EXCEEDED);
            assert!(frame.message.contains("quota of 3"), "{}", frame.message);
        }
        other => panic!("expected a structured server error, got {other:?}"),
    }

    let metrics = server.shutdown();
    assert_eq!(metrics.quota_rejections, 1);
    assert_eq!(
        metrics.submissions, 1,
        "the refused submission never counts"
    );
}

#[test]
fn bad_specs_get_structured_errors_with_the_cli_version_message() {
    use server::{Frame, Request, SubmitRequest};
    use std::io::{BufReader, Write};
    use std::os::unix::net::UnixStream;

    let (server, endpoint) = start_unix("badspec", ServerConfig::default());
    let Endpoint::Unix(path) = &endpoint else {
        unreachable!()
    };

    // A future-versioned spec must surface the same pinned version error
    // the CLI prints for `run --spec`.
    let mut stream = UnixStream::connect(path).expect("connect");
    let request = Request::Submit(SubmitRequest {
        client: "ci".to_string(),
        priority: 0,
        workers: 0,
        segment_size: 0,
        speculate: 0,
        timeout_ms: None,
        spec: serde_json::from_str(r#"{"version": 99, "jobs": []}"#).unwrap(),
    });
    server::protocol::write_line(&mut stream, &request).expect("send");
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let frame: Frame = server::protocol::read_line(&mut reader)
        .expect("read")
        .expect("one frame");
    match frame {
        Frame::Error(error) => {
            assert_eq!(error.code, ErrorFrame::BAD_SPEC);
            assert!(
                error
                    .message
                    .contains("this build reads versions 1 through 2"),
                "{}",
                error.message
            );
        }
        other => panic!("expected Error frame, got {other:?}"),
    }

    // Garbage that is not a request at all gets bad_request, not a hangup.
    let mut stream = UnixStream::connect(path).expect("connect");
    stream.write_all(b"{\"nonsense\": true}\n").unwrap();
    let mut reader = BufReader::new(stream);
    let frame: Frame = server::protocol::read_line(&mut reader)
        .expect("read")
        .expect("one frame");
    match frame {
        Frame::Error(error) => assert_eq!(error.code, ErrorFrame::BAD_REQUEST),
        other => panic!("expected Error frame, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_queued_submissions() {
    let (server, endpoint) = start_unix("drain", ServerConfig::default());

    // A slow submission to occupy the scheduler, then a fast one that must
    // sit in the queue behind it.
    let slow = JobList::new(vec![job(
        Application::OltpDb2,
        PrefetcherSpec::sms_paper_default(),
        400_000,
    )]);
    let fast = job_list(2_000);

    let slow_thread = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            client::submit(&endpoint, &slow, &SubmitOptions::default(), &mut |_| {})
        })
    };
    wait_for(
        || server.metrics().submissions >= 1,
        "slow submission admitted",
    );

    let fast_thread = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            client::submit(&endpoint, &fast, &SubmitOptions::default(), &mut |_| {})
        })
    };
    wait_for(
        || server.metrics().submissions >= 2,
        "fast submission queued",
    );

    // Shutdown with work still queued: the ack names the backlog and both
    // submissions complete with full result streams.
    let ack = client::shutdown(&endpoint).expect("shutdown request");
    let slow_outcome = slow_thread.join().unwrap().expect("slow submission drains");
    let fast_outcome = fast_thread.join().unwrap().expect("fast submission drains");
    assert_eq!(slow_outcome.frames.len(), 1);
    assert_eq!(fast_outcome.frames.len(), 2);

    // New submissions are refused while (and after) draining.
    let refused = client::submit(
        &endpoint,
        &job_list(1_000),
        &SubmitOptions::default(),
        &mut |_| {},
    );
    match refused {
        Err(client::ClientError::Server(frame)) => {
            assert_eq!(frame.code, ErrorFrame::SHUTTING_DOWN)
        }
        // The listener may already be gone (connection refused, or accepted
        // into the backlog and then reset), which is an equally valid way
        // to learn the server is stopping.
        Err(client::ClientError::Io(_)) | Err(client::ClientError::Protocol(_)) => {}
        other => panic!("expected refusal, got {other:?}"),
    }

    let metrics = server.wait();
    assert_eq!(metrics.queue_depth, 0, "queue fully drained");
    assert_eq!(metrics.jobs_served, 3);
    // `draining` counted the backlog at ack time; it can only have been the
    // fast submission (1) or nothing if the scheduler had already started
    // it (0).
    assert!(ack.draining <= 1, "draining = {}", ack.draining);
}

#[test]
fn tcp_endpoint_is_loopback_only() {
    // Loopback works end to end.
    let server = Server::start(ServerConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .expect("loopback TCP server starts");
    let addr = server.tcp_addr().expect("bound address");
    let endpoint = Endpoint::Tcp(addr.to_string());
    let outcome = client::submit(
        &endpoint,
        &job_list(2_000),
        &SubmitOptions::default(),
        &mut |_| {},
    )
    .expect("TCP submission succeeds");
    assert_eq!(outcome.frames.len(), 2);
    server.shutdown();

    // Anything routable is refused outright.
    let err = Server::start(ServerConfig {
        tcp: Some("0.0.0.0:0".to_string()),
        ..ServerConfig::default()
    })
    .expect_err("non-loopback must be refused");
    assert!(matches!(err, ServerError::Config(_)), "{err}");
    assert!(err.to_string().contains("loopback"), "{err}");

    // No endpoint at all is a configuration error too.
    let err = Server::start(ServerConfig::default()).expect_err("no endpoint");
    assert!(matches!(err, ServerError::Config(_)), "{err}");
}

#[test]
fn timed_out_submission_gets_deadline_exceeded_and_the_server_moves_on() {
    let (server, endpoint) = start_unix("timeout", ServerConfig::default());
    // Four jobs far too slow for a 50 ms deadline, run serially so the
    // watchdog provably cuts the run short between jobs.
    let slow = JobList::new(vec![
        job(
            Application::OltpDb2,
            PrefetcherSpec::sms_paper_default(),
            300_000,
        ),
        job(
            Application::Ocean,
            PrefetcherSpec::sms_paper_default(),
            300_000,
        ),
        job(
            Application::Sparse,
            PrefetcherSpec::sms_paper_default(),
            300_000,
        ),
        job(
            Application::DssQry1,
            PrefetcherSpec::sms_paper_default(),
            300_000,
        ),
    ]);
    let options = SubmitOptions {
        workers: 1,
        timeout_ms: 50,
        ..SubmitOptions::default()
    };
    let mut streamed = 0usize;
    let err = client::submit(&endpoint, &slow, &options, &mut |_| {
        streamed += 1;
    })
    .expect_err("the deadline must cut the submission short");
    match err {
        client::ClientError::Server(frame) => {
            assert_eq!(frame.code, ErrorFrame::DEADLINE_EXCEEDED);
        }
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }
    assert!(streamed < 4, "the full stream must not have been delivered");

    // The scheduler survives the cancellation and serves the next client.
    client::submit(
        &endpoint,
        &job_list(2_000),
        &SubmitOptions::default(),
        &mut |_| {},
    )
    .expect("healthy follow-up submission");
    let metrics = server.shutdown();
    assert_eq!(metrics.deadline_cancellations, 1);
}

#[test]
fn overloaded_queue_sheds_new_submissions_but_still_serves_cache_hits() {
    let (server, endpoint) = start_unix(
        "overload",
        ServerConfig {
            queue_max: 1,
            registry: Some(std::sync::Arc::new(faultinject::registry())),
            ..ServerConfig::default()
        },
    );
    // Warm the cache while the server is idle.
    let warm = job_list(2_000);
    client::submit(&endpoint, &warm, &SubmitOptions::default(), &mut |_| {}).expect("warm-up");
    // The warm-up client returns on its Done frame, a moment before the
    // scheduler's own bookkeeping marks it idle; wait that out so the
    // `running == 1` below can only mean the gated submission.
    wait_for(
        || server.metrics().running == 0,
        "scheduler idle after warm-up",
    );

    // Occupy the scheduler with a job gated on a file only this test
    // creates: the queue provably cannot drain until the gate opens, so
    // the shed below is a certainty, not a race against the scheduler.
    let token = u64::from(std::process::id());
    faultinject::close_gate(token).ok();
    let slow = JobList::new(vec![job(
        Application::OltpDb2,
        faultinject::Fault::Gate { token }.spec(),
        3_000,
    )]);
    let slow_thread = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            client::submit(&endpoint, &slow, &SubmitOptions::default(), &mut |_| {})
        })
    };
    wait_for(|| server.metrics().running == 1, "slow submission running");
    let queued = JobList::new(vec![job(Application::Ocean, PrefetcherSpec::null(), 3_000)]);
    let queued_thread = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            client::submit(&endpoint, &queued, &SubmitOptions::default(), &mut |_| {})
        })
    };
    wait_for(|| server.metrics().queue_depth == 1, "queue at its bound");

    // The next distinct submission is shed with a structured error...
    let shed = JobList::new(vec![job(
        Application::Sparse,
        PrefetcherSpec::null(),
        3_000,
    )]);
    let err = client::submit(&endpoint, &shed, &SubmitOptions::default(), &mut |_| {})
        .expect_err("must be shed");
    match err {
        client::ClientError::Server(frame) => {
            assert_eq!(frame.code, ErrorFrame::OVERLOADED);
            assert!(frame.message.contains("bound of 1"), "{}", frame.message);
        }
        other => panic!("expected overloaded, got {other:?}"),
    }

    // ...but a cache hit is still served: it consumes no engine capacity.
    let hit = client::submit(&endpoint, &warm, &SubmitOptions::default(), &mut |_| {})
        .expect("cache hit bypasses the full queue");
    assert!(hit.accepted.cache_hit);

    // Release the gated run; everything left drains and completes.
    faultinject::open_gate(token).expect("open gate");
    slow_thread.join().unwrap().expect("slow submission");
    queued_thread.join().unwrap().expect("queued submission");
    faultinject::close_gate(token).ok();
    let metrics = server.shutdown();
    assert_eq!(metrics.overload_rejections, 1);
}

#[test]
fn client_retries_ride_out_a_late_starting_server() {
    let socket = unique_socket("retry");
    let endpoint = Endpoint::Unix(socket.clone());
    let list = job_list(2_000);

    // Without retries, a missing server fails fast with a transport error.
    let err = client::submit(&endpoint, &list, &SubmitOptions::default(), &mut |_| {})
        .expect_err("no server yet");
    assert!(matches!(err, client::ClientError::Io(_)), "{err:?}");

    // With retries, the client reconnects through the outage: the server
    // comes up ~200 ms in, well inside the retry budget.
    let starter = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            Server::start(ServerConfig {
                unix_socket: Some(socket),
                ..ServerConfig::default()
            })
            .expect("server starts")
        })
    };
    let options = SubmitOptions {
        retries: 6,
        ..SubmitOptions::default()
    };
    let outcome =
        client::submit(&endpoint, &list, &options, &mut |_| {}).expect("retried submission");
    assert_eq!(outcome.frames.len(), 2);
    starter.join().unwrap().shutdown();
}

#[test]
fn panicking_plugin_fails_its_submission_not_the_server() {
    let (server, endpoint) = start_unix(
        "panic",
        ServerConfig {
            registry: Some(std::sync::Arc::new(faultinject::registry())),
            ..ServerConfig::default()
        },
    );
    let list = JobList::new(vec![
        job(Application::OltpDb2, PrefetcherSpec::null(), 2_000),
        job(
            Application::Ocean,
            faultinject::Fault::Panic { after: 1 }.spec(),
            2_000,
        ),
        job(Application::Sparse, PrefetcherSpec::null(), 2_000),
    ]);
    let options = SubmitOptions {
        workers: 1,
        ..SubmitOptions::default()
    };
    let mut streamed = Vec::new();
    let err = client::submit(&endpoint, &list, &options, &mut |frame| {
        streamed.push(frame.result.job_index);
    })
    .expect_err("the panicking job must fail the submission");
    match err {
        client::ClientError::Server(frame) => {
            assert_eq!(frame.code, ErrorFrame::ENGINE);
            assert!(
                frame
                    .message
                    .contains("job 1: panicked: injected chaos panic"),
                "{}",
                frame.message
            );
        }
        other => panic!("expected a structured engine error, got {other:?}"),
    }
    assert_eq!(streamed, vec![0], "clean prefix before the panicking job");

    // Panic isolation: the scheduler thread survives and keeps serving.
    client::submit(
        &endpoint,
        &job_list(2_000),
        &SubmitOptions::default(),
        &mut |_| {},
    )
    .expect("healthy follow-up submission");
    server.shutdown();
}

#[test]
fn client_disconnect_mid_stream_cancels_the_rest_of_the_run() {
    use server::{Frame, Request, SubmitRequest};
    use std::io::BufReader;
    use std::os::unix::net::UnixStream;

    let (server, endpoint) = start_unix(
        "disconnect",
        ServerConfig {
            quota: 100,
            registry: Some(std::sync::Arc::new(faultinject::registry())),
            ..ServerConfig::default()
        },
    );
    let Endpoint::Unix(path) = &endpoint else {
        unreachable!()
    };

    // Eight deliberately slow jobs (every access sleeps), run serially, so
    // the run is provably still going when the client vanishes.
    let jobs: Vec<SimJob> = (0..8)
        .map(|_| {
            job(
                Application::OltpDb2,
                faultinject::Fault::Delay {
                    every: 1,
                    micros: 100,
                }
                .spec(),
                3_000,
            )
        })
        .collect();
    let request = Request::Submit(SubmitRequest {
        client: "flaky".to_string(),
        priority: 0,
        workers: 1,
        segment_size: 0,
        speculate: 0,
        timeout_ms: None,
        spec: serde_json::to_value(&JobList::new(jobs)).unwrap(),
    });
    let mut stream = UnixStream::connect(path).expect("connect");
    server::protocol::write_line(&mut stream, &request).expect("send");
    let mut reader = BufReader::new(stream);
    let accepted: Frame = server::protocol::read_line(&mut reader)
        .expect("read")
        .expect("accepted frame");
    assert!(matches!(accepted, Frame::Accepted(_)), "{accepted:?}");
    let first: Frame = server::protocol::read_line(&mut reader)
        .expect("read")
        .expect("first result");
    assert!(matches!(first, Frame::Result(_)), "{first:?}");
    drop(reader); // hang up mid-stream

    // The handler notices on its next write, trips the cancel token, and
    // the client's quota frees without waiting for all eight jobs.
    wait_for(
        || {
            let metrics = server.metrics();
            metrics.disconnect_cancellations >= 1
                && metrics.running == 0
                && metrics.clients.is_empty()
        },
        "disconnect cancelled the run and freed the quota",
    );
    assert!(
        server.metrics().jobs_served < 8,
        "the run must have been cut short, served {}",
        server.metrics().jobs_served
    );

    // And the server still answers the next client.
    client::submit(
        &endpoint,
        &job_list(2_000),
        &SubmitOptions::default(),
        &mut |_| {},
    )
    .expect("healthy follow-up submission");
    server.shutdown();
}

#[test]
fn cache_dir_persists_results_across_restarts_and_tolerates_corruption() {
    let dir = std::env::temp_dir().join(format!("sms-lifecycle-cachedir-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let list = job_list(2_000);

    let first_frames = {
        let (server, endpoint) = start_unix(
            "cachedir-first",
            ServerConfig {
                cache_dir: Some(dir.clone()),
                ..ServerConfig::default()
            },
        );
        let outcome = client::submit(&endpoint, &list, &SubmitOptions::default(), &mut |_| {})
            .expect("first run");
        assert!(!outcome.accepted.cache_hit);
        server.shutdown();
        outcome.frames
    };

    // A corrupt entry dropped into the directory must cost one skip, not
    // the restart.
    std::fs::write(
        dir.join("deadbeefdeadbeef.smsc"),
        b"SMSCACHE 1 0123456789abcdef 4\nXXXX",
    )
    .expect("plant corrupt entry");

    let (server, endpoint) = start_unix(
        "cachedir-second",
        ServerConfig {
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    );
    let outcome = client::submit(&endpoint, &list, &SubmitOptions::default(), &mut |_| {})
        .expect("replayed run");
    assert!(
        outcome.accepted.cache_hit,
        "restart must hit the persisted cache"
    );
    assert_eq!(outcome.frames, first_frames, "byte-identical replay");
    let metrics = server.shutdown();
    assert_eq!(metrics.cache_loaded, 1);
    assert_eq!(metrics.cache_load_skipped, 1);
    std::fs::remove_dir_all(&dir).ok();
}

fn wait_for(mut condition: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}
