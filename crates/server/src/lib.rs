//! The simulation-as-a-service layer: a resident job server over the
//! deterministic engine, with a content-addressed result cache.
//!
//! Everything the engine runs is a pure function of its serializable spec
//! ([`engine::JobList`] + the engine-relevant [`engine::EngineConfig`]
//! fields), so serving simulations is classic infrastructure work:
//!
//! * **transport** — a line-delimited JSON protocol over a unix-domain
//!   socket and/or loopback TCP ([`protocol`]): one request per
//!   connection, results streamed back frame by frame as jobs complete;
//! * **scheduling** — a prioritized submission queue ([`queue`]) drained by
//!   a single scheduler thread driving [`engine::run_jobs_streamed`], so
//!   priorities are strict and each submission gets the full worker
//!   budget;
//! * **caching** — a content-addressed result cache ([`cache`]) keyed by
//!   [`engine::spec_fingerprint`]: identical resubmissions replay the
//!   recorded frames byte for byte without touching the engine;
//! * **protection** — per-client job quotas, loopback-only TCP, and
//!   graceful shutdown that drains the queue before exit;
//! * **observability** — server counters ([`ServerMetrics`]) exported
//!   through the workspace's standard [`metrics::MetricsReport`] envelope
//!   (`kind: "server"`).
//!
//! The CLI front ends live in `sms-experiments` (`serve` and `submit`); the
//! [`client`] module is the reusable client those are built on.
//!
//! # Example
//!
//! ```
//! use server::{client, Endpoint, Server, ServerConfig, SubmitOptions};
//!
//! let dir = std::env::temp_dir();
//! let socket = dir.join(format!("sms-doc-{}.sock", std::process::id()));
//! let server = Server::start(ServerConfig {
//!     unix_socket: Some(socket.clone()),
//!     ..ServerConfig::default()
//! })
//! .expect("server starts");
//!
//! let endpoint = Endpoint::Unix(socket);
//! let list = engine::JobList::new(Vec::new());
//! let outcome = client::submit(&endpoint, &list, &SubmitOptions::default(), &mut |_| {})
//!     .expect("empty submission succeeds");
//! assert_eq!(outcome.frames.len(), 0);
//!
//! client::shutdown(&endpoint).expect("shutdown");
//! let metrics = server.wait();
//! assert_eq!(metrics.submissions, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::ResultCache;
pub use client::{ClientError, Endpoint, SubmitOptions, SubmitOutcome};
pub use protocol::{
    Accepted, Done, ErrorFrame, Frame, JobFrame, Request, ShutdownAck, SubmitRequest,
    PROTOCOL_VERSION,
};
pub use server::{ClientUsage, Server, ServerConfig, ServerError, ServerMetrics, REPORT_KIND};
