//! The resident server: listeners, connection handlers, the scheduler
//! thread, quotas, counters, and graceful shutdown.
//!
//! Threading model: one acceptor thread per listener (unix socket, loopback
//! TCP), one short-lived handler thread per connection, and a single
//! scheduler thread that pops the [`SubmissionQueue`] and drives the engine
//! via [`engine::run_jobs_streamed`], forwarding each result frame through
//! the submission's channel as it completes.  One scheduler means queued
//! submissions run strictly in priority order and each one gets the
//! server's full worker budget — throughput *within* a submission comes
//! from the engine's own worker pool, not from racing submissions.

use crate::cache::ResultCache;
use crate::protocol::{
    read_line, write_line, Accepted, Done, ErrorFrame, Frame, JobFrame, Request, ShutdownAck,
    SubmitRequest,
};
use crate::queue::{Event, Queued, Submission, SubmissionQueue};
use engine::{CancelToken, EngineConfig, JobList, Registry};
use metrics::{Histogram, MetricsConfig, MetricsReport};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tracelog::Trace;

/// Report kind tag of the server's counters payload.
pub const REPORT_KIND: &str = "server";

/// How long an acceptor sleeps between polls of a quiet listener (also the
/// shutdown-latency bound of an idle acceptor).
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// How long a connection may sit idle before sending its request.  The
/// protocol is one request per connection, sent immediately; the timeout
/// only guards shutdown against a stuck peer.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(30);

/// Configuration of a [`Server`].
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Unix-domain socket path to listen on (a stale file at the path is
    /// replaced).
    pub unix_socket: Option<PathBuf>,
    /// Loopback TCP address to listen on, e.g. `127.0.0.1:7807` (port `0`
    /// picks a free port — see [`Server::tcp_addr`]).  Non-loopback
    /// addresses are refused: the protocol has no authentication.
    pub tcp: Option<String>,
    /// Per-client job quota: the maximum jobs a client may have queued or
    /// running at once (`0` = unlimited).  Cache hits never count — they
    /// consume no engine capacity.
    pub quota: usize,
    /// Default engine worker count for submissions that do not name one
    /// (`0` = one per available hardware thread).
    pub workers: usize,
    /// Result-cache entry budget: least recently used entries are evicted
    /// past this many (`0` = unlimited).
    pub cache_max_entries: usize,
    /// Result-cache byte budget, in serialized frame bytes (`0` =
    /// unlimited).
    pub cache_max_bytes: u64,
    /// Directory the result cache persists into (`None` = memory only).
    /// Attached at startup: surviving entries are reloaded, corrupt ones
    /// skipped and counted — see [`ResultCache::attach_dir`].
    pub cache_dir: Option<PathBuf>,
    /// Submission-queue bound for load shedding (`0` = unbounded).  A
    /// submission arriving while this many are already queued is refused
    /// with a terminal [`ErrorFrame::OVERLOADED`]; cache hits are never
    /// shed — they bypass the queue entirely.
    pub queue_max: usize,
    /// Plugin registry the scheduler resolves prefetcher specs through
    /// (`None` = the built-ins).  Lets embedders and the chaos harness
    /// serve custom plugins.
    pub registry: Option<Arc<Registry>>,
    /// Pipeline trace the server records into: per-submission lifecycle
    /// spans, cache hit/miss events and a queue-depth counter, plus the
    /// engine's own spans for every scheduled run.  Disabled by default
    /// (zero cost — see `tracelog`).
    pub trace: Trace,
}

/// An error starting a [`Server`].
#[derive(Debug)]
pub enum ServerError {
    /// The configuration is unusable (no endpoint, non-loopback TCP, ...).
    Config(String),
    /// A listener failed to bind.
    Io(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Config(message) => write!(f, "server configuration: {message}"),
            ServerError::Io(message) => write!(f, "server I/O: {message}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// One client's live quota usage, reported in [`ServerMetrics::clients`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientUsage {
    /// Client identity as given at submission.
    pub client: String,
    /// Jobs this client currently has queued or running.
    pub active_jobs: u64,
}

/// The server's counters, exported through the standard [`MetricsReport`]
/// envelope as kind [`REPORT_KIND`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServerMetrics {
    /// Submissions currently waiting in the queue.
    pub queue_depth: u64,
    /// Highest queue depth observed.
    pub max_queue_depth: u64,
    /// Submissions currently being executed by the scheduler (0 or 1).
    pub running: u64,
    /// Submit requests accepted (cache hits included).
    pub submissions: u64,
    /// Jobs executed by the engine on behalf of submissions.
    pub jobs_served: u64,
    /// Result frames streamed to clients (engine runs plus cache replays).
    pub results_streamed: u64,
    /// Submissions answered from the result cache.
    pub cache_hits: u64,
    /// Submissions that missed the cache and ran.
    pub cache_misses: u64,
    /// Distinct fingerprints currently resident in the cache.
    pub cache_entries: u64,
    /// Serialized bytes currently resident in the cache.
    pub cache_bytes: u64,
    /// Cache entries evicted to hold the configured budgets.
    pub cache_evictions: u64,
    /// Serialized bytes reclaimed by cache evictions.
    pub cache_evicted_bytes: u64,
    /// Cache entries reloaded from the persistence directory at startup.
    pub cache_loaded: u64,
    /// Corrupt or truncated cache files skipped at startup.
    pub cache_load_skipped: u64,
    /// Cache entry writes that failed (persistence is best-effort).
    pub cache_persist_failures: u64,
    /// Submissions refused because they would exceed the client's quota.
    pub quota_rejections: u64,
    /// Submissions shed because the queue was at its configured bound.
    pub overload_rejections: u64,
    /// Submissions cancelled because their deadline passed.
    pub deadline_cancellations: u64,
    /// Submissions cancelled because their client disconnected mid-stream.
    pub disconnect_cancellations: u64,
    /// Queue-wait latency distribution: microseconds from admission to the
    /// scheduler starting the submission (cache hits never queue and never
    /// land here).
    pub queue_wait_us: Histogram,
    /// Per-client live quota usage, sorted by client identity.
    pub clients: Vec<ClientUsage>,
}

impl ServerMetrics {
    /// Wraps the counters in the standard envelope.
    pub fn report(&self) -> MetricsReport {
        MetricsReport::new(REPORT_KIND, self)
    }
}

/// Mutable server state behind the state mutex.
#[derive(Debug, Default)]
struct State {
    queue: SubmissionQueue,
    next_seq: u64,
    shutting_down: bool,
    /// Jobs queued or running per client, for quota accounting.
    active: HashMap<String, u64>,
    submissions: u64,
    jobs_served: u64,
    results_streamed: u64,
    quota_rejections: u64,
    overload_rejections: u64,
    deadline_cancellations: u64,
    disconnect_cancellations: u64,
    max_queue_depth: u64,
    /// Submissions the scheduler is currently executing (0 or 1).
    running: u64,
    /// Admission-to-start queue-wait latency, microseconds.
    queue_wait_us: Histogram,
}

/// State shared by every server thread.
struct Shared {
    config: ServerConfig,
    state: Mutex<State>,
    queue_cv: Condvar,
    cache: Mutex<ResultCache>,
    /// Lock-free mirror of `State::shutting_down` for acceptor polling.
    shutdown: AtomicBool,
    /// Connection handler threads, joined on shutdown so in-flight replies
    /// finish before the process exits.
    connections: Mutex<Vec<JoinHandle<()>>>,
}

impl fmt::Debug for Shared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Shared {
    fn metrics(&self) -> ServerMetrics {
        let state = self.state.lock().expect("state mutex poisoned");
        let cache = self.cache.lock().expect("cache mutex poisoned");
        let mut clients: Vec<ClientUsage> = state
            .active
            .iter()
            .map(|(client, &active_jobs)| ClientUsage {
                client: client.clone(),
                active_jobs,
            })
            .collect();
        clients.sort_by(|a, b| a.client.cmp(&b.client));
        ServerMetrics {
            queue_depth: state.queue.len() as u64,
            max_queue_depth: state.max_queue_depth,
            running: state.running,
            submissions: state.submissions,
            jobs_served: state.jobs_served,
            results_streamed: state.results_streamed,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_entries: cache.entries(),
            cache_bytes: cache.bytes(),
            cache_evictions: cache.evictions(),
            cache_evicted_bytes: cache.evicted_bytes(),
            cache_loaded: cache.loaded(),
            cache_load_skipped: cache.load_skipped(),
            cache_persist_failures: cache.persist_failures(),
            quota_rejections: state.quota_rejections,
            overload_rejections: state.overload_rejections,
            deadline_cancellations: state.deadline_cancellations,
            disconnect_cancellations: state.disconnect_cancellations,
            queue_wait_us: state.queue_wait_us,
            clients,
        }
    }

    fn initiate_shutdown(&self) -> u64 {
        let mut state = self.state.lock().expect("state mutex poisoned");
        state.shutting_down = true;
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
        state.queue.len() as u64
    }
}

/// A running job server.
///
/// Start with [`Server::start`], stop with a [`Request::Shutdown`] over any
/// endpoint or programmatically with [`Server::shutdown`]; either way the
/// queue drains before [`Server::wait`] returns.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    unix_socket: Option<PathBuf>,
    tcp_addr: Option<SocketAddr>,
}

impl Server {
    /// Binds the configured endpoints and spawns the acceptor and scheduler
    /// threads.
    ///
    /// # Errors
    ///
    /// [`ServerError::Config`] when no endpoint is configured or the TCP
    /// address is not loopback; [`ServerError::Io`] when a bind fails.
    pub fn start(config: ServerConfig) -> Result<Self, ServerError> {
        if config.unix_socket.is_none() && config.tcp.is_none() {
            return Err(ServerError::Config(
                "at least one endpoint (unix socket or loopback TCP) is required".to_string(),
            ));
        }
        let unix_socket = config.unix_socket.clone();
        let unix_listener = match &unix_socket {
            Some(path) => {
                // A stale socket file from a dead server would fail the
                // bind; replacing it is safe because connecting to it can
                // only ever have raised ECONNREFUSED.
                if path.exists() {
                    std::fs::remove_file(path)
                        .map_err(|e| ServerError::Io(format!("remove stale {path:?}: {e}")))?;
                }
                let listener = UnixListener::bind(path)
                    .map_err(|e| ServerError::Io(format!("bind {path:?}: {e}")))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| ServerError::Io(e.to_string()))?;
                Some(listener)
            }
            None => None,
        };
        let tcp_listener = match &config.tcp {
            Some(addr) => {
                let parsed: SocketAddr = addr
                    .parse()
                    .map_err(|e| ServerError::Config(format!("TCP address {addr:?}: {e}")))?;
                if !parsed.ip().is_loopback() {
                    return Err(ServerError::Config(format!(
                        "TCP endpoint {addr:?} is not loopback; the protocol has no \
                         authentication and must not face a network"
                    )));
                }
                let listener = TcpListener::bind(parsed)
                    .map_err(|e| ServerError::Io(format!("bind {addr:?}: {e}")))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| ServerError::Io(e.to_string()))?;
                Some(listener)
            }
            None => None,
        };
        let tcp_addr = match &tcp_listener {
            Some(listener) => Some(
                listener
                    .local_addr()
                    .map_err(|e| ServerError::Io(e.to_string()))?,
            ),
            None => None,
        };

        let mut cache = ResultCache::with_budget(config.cache_max_entries, config.cache_max_bytes);
        if let Some(dir) = &config.cache_dir {
            cache
                .attach_dir(dir)
                .map_err(|e| ServerError::Io(format!("cache dir {dir:?}: {e}")))?;
        }
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(State::default()),
            queue_cv: Condvar::new(),
            cache: Mutex::new(cache),
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(Vec::new()),
        });

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || scheduler(&shared)));
        }
        if let Some(listener) = unix_listener {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_unix(&shared, &listener)));
        }
        if let Some(listener) = tcp_listener {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_tcp(&shared, &listener)));
        }
        Ok(Self {
            shared,
            threads,
            unix_socket,
            tcp_addr,
        })
    }

    /// The unix socket path the server listens on, if configured.
    pub fn unix_socket(&self) -> Option<&Path> {
        self.unix_socket.as_deref()
    }

    /// The bound TCP address, if configured (the actual port when the
    /// configuration asked for port `0`).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// A snapshot of the server's counters.
    pub fn metrics(&self) -> ServerMetrics {
        self.shared.metrics()
    }

    /// Begins graceful shutdown without blocking: new submissions are
    /// refused, the queue keeps draining.
    pub fn initiate_shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Blocks until the server has fully stopped — queue drained, in-flight
    /// replies flushed, listeners closed — and returns the final counters.
    /// Shutdown must have been initiated (by [`Server::initiate_shutdown`]
    /// or a client's [`Request::Shutdown`]); otherwise this blocks until it
    /// is.
    pub fn wait(self) -> ServerMetrics {
        for thread in self.threads {
            thread.join().expect("server thread panicked");
        }
        let connections = std::mem::take(
            &mut *self
                .shared
                .connections
                .lock()
                .expect("connections mutex poisoned"),
        );
        for connection in connections {
            // A handler that panicked already failed its own connection;
            // tearing down the rest of the server must not panic with it.
            connection.join().ok();
        }
        if let Some(path) = &self.unix_socket {
            std::fs::remove_file(path).ok();
        }
        self.shared.metrics()
    }

    /// [`Server::initiate_shutdown`] then [`Server::wait`].
    pub fn shutdown(self) -> ServerMetrics {
        self.initiate_shutdown();
        self.wait()
    }
}

/// The scheduler: pops submissions in priority order and streams each one
/// through the engine, draining the queue even during shutdown.
fn scheduler(shared: &Arc<Shared>) {
    let registry = shared
        .config
        .registry
        .as_deref()
        .unwrap_or_else(|| Registry::builtin());
    let trace = &shared.config.trace;
    let recorder = trace.recorder("scheduler");
    loop {
        let (queued, queue_depth) = {
            let mut state = shared.state.lock().expect("state mutex poisoned");
            loop {
                if let Some(queued) = state.queue.pop() {
                    let waited = queued.submission.queued_at.elapsed();
                    state.queue_wait_us.record(waited.as_micros() as u64);
                    state.running += 1;
                    break (queued, state.queue.len() as u64);
                }
                if state.shutting_down {
                    return;
                }
                state = shared.queue_cv.wait(state).expect("state mutex poisoned");
            }
        };
        recorder.counter("queue_depth", queue_depth as f64);
        let Submission {
            client,
            jobs,
            config,
            fingerprint,
            reply,
            queued_at,
            cancel,
            deadline,
        } = queued.submission;
        let job_count = jobs.len() as u64;

        // A deadline that expired while the submission sat in the queue:
        // answer it without burning engine time on a client that has
        // already given up on the result.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            recorder.instant("deadline_expired_in_queue", |args| {
                args.u64("seq", queued.seq);
            });
            let _ = reply.send(Event::Error(deadline_error()));
            let mut state = shared.state.lock().expect("state mutex poisoned");
            state.deadline_cancellations += 1;
            state.running -= 1;
            release_quota(&mut state, &client, job_count);
            continue;
        }

        let mut span = recorder.span("submission");
        span.arg_u64("seq", queued.seq);
        span.arg_u64("jobs", job_count);
        span.arg_text("client", &client);
        span.arg_f64("queue_wait_seconds", queued_at.elapsed().as_secs_f64());

        // Deadline watchdog: parked until the deadline (or until the run
        // finishes and unparks it), then trips the shared cancel token.
        // Cancellation is cooperative — the engine stops claiming jobs and
        // the delivered results stay a clean in-order prefix.
        let watchdog_done = Arc::new(AtomicBool::new(false));
        let watchdog = deadline.map(|deadline| {
            let done = Arc::clone(&watchdog_done);
            let cancel = cancel.clone();
            std::thread::spawn(move || {
                while !done.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    if now >= deadline {
                        cancel.cancel();
                        return;
                    }
                    std::thread::park_timeout(deadline - now);
                }
            })
        });

        let mut recorded: Vec<JobFrame> = Vec::new();
        let outcome = engine::run_jobs_streamed_observed(
            &jobs,
            &config,
            registry,
            &MetricsConfig::enabled(),
            trace,
            &cancel,
            &mut |result, metrics| {
                let frame = JobFrame { result, metrics };
                recorded.push(frame.clone());
                // A vanished client must not kill the run: the frames are
                // still recorded into the cache.
                let _ = reply.send(Event::Result(Box::new(frame)));
            },
        );
        drop(span);
        watchdog_done.store(true, Ordering::SeqCst);
        if let Some(handle) = watchdog {
            handle.thread().unpark();
            handle.join().expect("deadline watchdog panicked");
        }

        let streamed = recorded.len() as u64;
        let mut deadline_cancelled = false;
        match outcome {
            // A cancelled run returns Ok with a short prefix; only a run
            // that delivered every job is complete, cacheable and `Done`.
            Ok((delivered, _)) if (delivered as u64) == job_count => {
                shared
                    .cache
                    .lock()
                    .expect("cache mutex poisoned")
                    .insert(fingerprint, recorded);
                let _ = reply.send(Event::Done {
                    jobs: delivered as u64,
                });
            }
            Ok((delivered, _)) => {
                // Cut short: by the deadline watchdog, or by the connection
                // handler of a disconnected client (which already counted
                // itself).  Partial results are never cached.
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    deadline_cancelled = true;
                    recorder.instant("deadline_exceeded", |args| {
                        args.u64("seq", queued.seq);
                        args.u64("delivered", delivered as u64);
                    });
                    let _ = reply.send(Event::Error(deadline_error()));
                } else {
                    recorder.instant("run_abandoned", |args| {
                        args.u64("seq", queued.seq);
                        args.u64("delivered", delivered as u64);
                    });
                }
            }
            Err(e) => {
                // Failures are not cached: the error may be environmental
                // (a trace file missing today can exist tomorrow).
                let _ = reply.send(Event::Error(ErrorFrame::new(
                    ErrorFrame::ENGINE,
                    e.to_string(),
                )));
            }
        }
        let mut state = shared.state.lock().expect("state mutex poisoned");
        state.jobs_served += streamed;
        state.results_streamed += streamed;
        state.running -= 1;
        if deadline_cancelled {
            state.deadline_cancellations += 1;
        }
        release_quota(&mut state, &client, job_count);
    }
}

/// The terminal frame of a submission whose deadline passed.
fn deadline_error() -> ErrorFrame {
    ErrorFrame::new(
        ErrorFrame::DEADLINE_EXCEEDED,
        "submission deadline passed before completion; results streamed so far stand",
    )
}

/// Returns a client's jobs to its quota budget.
fn release_quota(state: &mut State, client: &str, jobs: u64) {
    if let Some(active) = state.active.get_mut(client) {
        *active = active.saturating_sub(jobs);
        if *active == 0 {
            state.active.remove(client);
        }
    }
}

fn accept_unix(shared: &Arc<Shared>, listener: &UnixListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).ok();
                stream.set_read_timeout(Some(REQUEST_TIMEOUT)).ok();
                spawn_handler(shared, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn accept_tcp(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).ok();
                stream.set_read_timeout(Some(REQUEST_TIMEOUT)).ok();
                spawn_handler(shared, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn spawn_handler<S: Read + Write + Send + 'static>(shared: &Arc<Shared>, stream: S) {
    let handler_shared = Arc::clone(shared);
    let handle = std::thread::spawn(move || {
        // Write errors mean the client hung up; nothing useful to do.
        let _ = handle_connection(&handler_shared, stream);
    });
    shared
        .connections
        .lock()
        .expect("connections mutex poisoned")
        .push(handle);
}

/// Serves one connection: one request in, a stream of frames out.
fn handle_connection<S: Read + Write>(shared: &Arc<Shared>, mut stream: S) -> io::Result<()> {
    let request: Request = {
        let mut reader = BufReader::new(&mut stream);
        match read_line(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return write_line(
                    &mut stream,
                    &Frame::Error(ErrorFrame::new(ErrorFrame::BAD_REQUEST, e.to_string())),
                );
            }
            Err(e) => return Err(e),
        }
    };
    match request {
        Request::Submit(submit) => handle_submit(shared, &mut stream, submit),
        Request::Status => write_line(&mut stream, &Frame::Metrics(shared.metrics().report())),
        Request::Shutdown => {
            let draining = shared.initiate_shutdown();
            write_line(&mut stream, &Frame::ShutdownAck(ShutdownAck { draining }))
        }
    }
}

/// Outcome of admission control for a submission.
enum Admission {
    /// Replay these recorded frames; the submission never queues.
    CacheHit(Vec<JobFrame>),
    /// Queued; stream events from this receiver.
    Queued {
        receiver: std::sync::mpsc::Receiver<Event>,
        queue_depth: u64,
        /// The submission's cancel token: tripped by this handler when the
        /// client disconnects mid-stream, so the scheduler stops spending
        /// engine time on a reply nobody is reading.
        cancel: CancelToken,
    },
    /// Refused with a terminal error.
    Refused(ErrorFrame),
}

fn handle_submit<S: Write>(
    shared: &Arc<Shared>,
    stream: &mut S,
    submit: SubmitRequest,
) -> io::Result<()> {
    // Re-render and load the spec through the exact `run --spec` path so
    // version handling (including the lenient old-version migration) and
    // error messages match the CLI's byte for byte.
    let spec_text =
        serde_json::to_string(&submit.spec).expect("value-tree serialization cannot fail");
    let list = match JobList::from_json(&spec_text) {
        Ok(list) => list,
        Err(e) => {
            return write_line(
                stream,
                &Frame::Error(ErrorFrame::new(ErrorFrame::BAD_SPEC, e.to_string())),
            );
        }
    };
    if submit.client.is_empty() {
        return write_line(
            stream,
            &Frame::Error(ErrorFrame::new(
                ErrorFrame::BAD_REQUEST,
                "client identity must not be empty",
            )),
        );
    }
    let workers = if submit.workers > 0 {
        submit.workers
    } else {
        shared.config.workers
    };
    let config = EngineConfig::with_workers(workers)
        .with_segment_size(submit.segment_size)
        .with_speculation(submit.speculate);
    let fingerprint = engine::spec_fingerprint(&list.jobs, &config);
    let job_count = list.jobs.len() as u64;

    let recorder = shared.config.trace.recorder("server.conn");
    let admission = {
        let mut accept_span = recorder.span("submit.accept");
        accept_span.arg_u64("jobs", job_count);
        accept_span.arg_text("client", &submit.client);
        let mut state = shared.state.lock().expect("state mutex poisoned");
        // Cache admission happens under the state lock so an identical
        // concurrent submission cannot double-run ahead of the insert.  It
        // comes before every refusal: a hit consumes no engine capacity, so
        // it is served even while draining or shedding load.
        let cached = shared
            .cache
            .lock()
            .expect("cache mutex poisoned")
            .lookup(&fingerprint);
        match cached {
            Some(frames) => {
                recorder.instant("cache.hit", |args| {
                    args.u64("jobs", job_count);
                });
                state.submissions += 1;
                state.results_streamed += frames.len() as u64;
                Admission::CacheHit(frames)
            }
            None if state.shutting_down => Admission::Refused(ErrorFrame::new(
                ErrorFrame::SHUTTING_DOWN,
                "server is draining for shutdown and accepts no new submissions",
            )),
            None => {
                recorder.instant("cache.miss", |args| {
                    args.u64("jobs", job_count);
                });
                let queue_max = shared.config.queue_max;
                let quota = shared.config.quota as u64;
                let active = state.active.get(&submit.client).copied().unwrap_or(0);
                if queue_max > 0 && state.queue.len() >= queue_max {
                    state.overload_rejections += 1;
                    recorder.instant("overloaded", |args| {
                        args.u64("queue_depth", state.queue.len() as u64);
                    });
                    Admission::Refused(ErrorFrame::new(
                        ErrorFrame::OVERLOADED,
                        format!("submission queue is at its bound of {queue_max}; resubmit later"),
                    ))
                } else if quota > 0 && active + job_count > quota {
                    state.quota_rejections += 1;
                    Admission::Refused(ErrorFrame::new(
                        ErrorFrame::QUOTA_EXCEEDED,
                        format!(
                            "client {:?} has {active} jobs outstanding; {job_count} more \
                             would exceed the quota of {quota}",
                            submit.client
                        ),
                    ))
                } else {
                    let (reply, receiver) = std::sync::mpsc::channel();
                    let cancel = CancelToken::new();
                    let deadline = submit
                        .timeout_ms
                        .filter(|&ms| ms > 0)
                        .map(|ms| Instant::now() + Duration::from_millis(ms));
                    let seq = state.next_seq;
                    state.next_seq += 1;
                    state.submissions += 1;
                    *state.active.entry(submit.client.clone()).or_default() += job_count;
                    state.queue.push(Queued {
                        seq,
                        priority: submit.priority,
                        submission: Submission {
                            client: submit.client.clone(),
                            jobs: list.jobs,
                            config,
                            fingerprint,
                            reply,
                            queued_at: Instant::now(),
                            cancel: cancel.clone(),
                            deadline,
                        },
                    });
                    let queue_depth = state.queue.len() as u64;
                    state.max_queue_depth = state.max_queue_depth.max(queue_depth);
                    recorder.counter("queue_depth", queue_depth as f64);
                    shared.queue_cv.notify_one();
                    Admission::Queued {
                        receiver,
                        queue_depth,
                        cancel,
                    }
                }
            }
        }
    };

    match admission {
        Admission::Refused(error) => write_line(stream, &Frame::Error(error)),
        Admission::CacheHit(frames) => {
            write_line(
                stream,
                &Frame::Accepted(Accepted {
                    jobs: job_count,
                    queue_depth: 0,
                    cache_hit: true,
                }),
            )?;
            let mut stream_span = recorder.span("submit.stream");
            stream_span.arg_u64("jobs", job_count);
            stream_span.arg_u64("cache_hit", 1);
            let jobs = frames.len() as u64;
            for frame in frames {
                write_line(stream, &Frame::Result(Box::new(frame)))?;
            }
            write_line(
                stream,
                &Frame::Done(Done {
                    jobs,
                    cache_hit: true,
                }),
            )
        }
        Admission::Queued {
            receiver,
            queue_depth,
            cancel,
        } => {
            // Forward events until the terminal frame.  A failed write means
            // the client hung up: trip the submission's cancel token so the
            // scheduler stops the run at the next job boundary and the
            // client's quota frees promptly, instead of finishing a reply
            // nobody is reading.
            let mut forward = || -> io::Result<()> {
                write_line(
                    stream,
                    &Frame::Accepted(Accepted {
                        jobs: job_count,
                        queue_depth,
                        cache_hit: false,
                    }),
                )?;
                let mut stream_span = recorder.span("submit.stream");
                stream_span.arg_u64("jobs", job_count);
                stream_span.arg_u64("cache_hit", 0);
                for event in receiver.iter() {
                    match event {
                        Event::Result(frame) => write_line(stream, &Frame::Result(frame))?,
                        Event::Done { jobs } => {
                            return write_line(
                                stream,
                                &Frame::Done(Done {
                                    jobs,
                                    cache_hit: false,
                                }),
                            );
                        }
                        Event::Error(error) => return write_line(stream, &Frame::Error(error)),
                    }
                }
                Ok(())
            };
            let outcome = forward();
            if outcome.is_err() {
                cancel.cancel();
                recorder.instant("client_disconnected", |args| {
                    args.u64("jobs", job_count);
                });
                let mut state = shared.state.lock().expect("state mutex poisoned");
                state.disconnect_cancellations += 1;
            }
            outcome
        }
    }
}
