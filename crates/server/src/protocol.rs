//! The wire protocol: line-delimited JSON over a byte stream.
//!
//! Framing is one JSON document per `\n`-terminated line.  A connection
//! carries exactly one [`Request`] from the client followed by a stream of
//! [`Frame`]s from the server; the server closes the connection after the
//! terminal frame.  Requests and frames are externally tagged by their
//! variant name (`{"Submit": {...}}`, `{"Result": {...}}`, bare `"Status"`
//! for unit variants), which is exactly what the workspace serde derive
//! emits — no hand-written codecs.
//!
//! Reply sequence for a `Submit`:
//!
//! 1. [`Frame::Accepted`] (or a terminal [`Frame::Error`] — bad spec, quota
//!    exceeded, server shutting down);
//! 2. one [`Frame::Result`] per job, **in submission order**, each carrying
//!    the job's [`JobResult`] and [`JobMetrics`] as it completes;
//! 3. a terminal [`Frame::Done`] (or [`Frame::Error`] if the engine
//!    rejected a job after the results streamed so far).

use engine::{JobMetrics, JobResult};
use metrics::MetricsReport;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// Version of the request/frame wire format.
pub const PROTOCOL_VERSION: u32 = 1;

/// A job submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// Client identity for quota accounting (free-form, non-empty).
    pub client: String,
    /// Queue priority: higher runs first; ties run in arrival order.
    pub priority: i64,
    /// Worker threads for this submission (`0` = the server's default).
    pub workers: usize,
    /// Intra-job segment size (`0` = unsegmented).
    pub segment_size: usize,
    /// Speculative run-ahead depth (`0` = off).
    pub speculate: usize,
    /// Submission deadline in milliseconds, measured from admission
    /// (introduced after protocol version 1 shipped; absent on old clients
    /// and decoded as `None` — no deadline).  A submission still queued or
    /// running past its deadline is cancelled cleanly and answered with a
    /// terminal [`ErrorFrame::DEADLINE_EXCEEDED`] after the in-order result
    /// prefix streamed so far.
    pub timeout_ms: Option<u64>,
    /// The job spec: a [`engine::JobList`] document of any supported
    /// version (the server loads it through the same lenient path as
    /// `run --spec`).
    pub spec: serde_json::Value,
}

/// One client request; a connection carries exactly one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a job list and stream its results back.
    Submit(SubmitRequest),
    /// Report the server's counters as a [`MetricsReport`].
    Status,
    /// Begin graceful shutdown: stop accepting, drain the queue, exit.
    Shutdown,
}

/// Submission accepted: the stream of per-job results follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Accepted {
    /// Number of jobs in the accepted submission.
    pub jobs: u64,
    /// Queue depth observed at acceptance (0 for a cache hit — the
    /// submission never enters the queue).
    pub queue_depth: u64,
    /// Whether the reply is served from the content-addressed result cache.
    pub cache_hit: bool,
}

/// One completed job: the deterministic result plus its telemetry.
///
/// Cache hits replay the frames recorded by the original run — including
/// the original [`JobMetrics`] (the telemetry of the run that produced the
/// bytes, not of the cache lookup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobFrame {
    /// The job's result, bit-identical to a direct engine run.
    pub result: JobResult,
    /// Telemetry of the run that produced the result.
    pub metrics: JobMetrics,
}

/// Terminal frame of a successful submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Done {
    /// Number of [`Frame::Result`] frames that preceded this one.
    pub jobs: u64,
    /// Whether the whole reply came from the result cache.
    pub cache_hit: bool,
}

/// Acknowledgement of a [`Request::Shutdown`]: the server stops accepting
/// new work and exits once the named backlog has drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShutdownAck {
    /// Submissions still queued at the time of the request; all of them run
    /// to completion before the server exits.
    pub draining: u64,
}

/// A structured, terminal error reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorFrame {
    /// Stable machine-readable code (one of the `ErrorFrame::*` constants).
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl ErrorFrame {
    /// The request line was not a well-formed [`Request`].
    pub const BAD_REQUEST: &'static str = "bad_request";
    /// The submitted spec failed to load (parse or version error).
    pub const BAD_SPEC: &'static str = "bad_spec";
    /// The submission would take the client over its job quota.
    pub const QUOTA_EXCEEDED: &'static str = "quota_exceeded";
    /// The engine rejected a job (unknown plugin, unopenable trace, ...).
    pub const ENGINE: &'static str = "engine";
    /// The server is draining for shutdown and accepts no new submissions.
    pub const SHUTTING_DOWN: &'static str = "shutting_down";
    /// The submission's deadline (`timeout_ms`) passed before it completed;
    /// results streamed before the cancellation stand.
    pub const DEADLINE_EXCEEDED: &'static str = "deadline_exceeded";
    /// The submission queue is at its configured bound (`--queue-max`);
    /// resubmit later.  Cache hits are never shed — they bypass the queue.
    pub const OVERLOADED: &'static str = "overloaded";

    /// An error frame with the given code and message.
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        Self {
            code: code.to_string(),
            message: message.into(),
        }
    }
}

/// One server-to-client reply frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// Submission accepted; results follow.
    Accepted(Accepted),
    /// One completed job.
    Result(Box<JobFrame>),
    /// Successful end of a submission's result stream.
    Done(Done),
    /// Reply to [`Request::Status`]: the server's counters in the standard
    /// envelope (`kind: "server"`).
    Metrics(MetricsReport),
    /// Reply to [`Request::Shutdown`].
    ShutdownAck(ShutdownAck),
    /// Terminal structured error.
    Error(ErrorFrame),
}

/// Writes one value as a JSON line and flushes (framing is per-line, so
/// every frame must reach the peer promptly).
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_line<W: Write, T: Serialize>(writer: &mut W, value: &T) -> io::Result<()> {
    let line = serde_json::to_string(value).expect("value-tree serialization cannot fail");
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Reads one JSON line and decodes it; `None` on a clean EOF before any
/// bytes.
///
/// # Errors
///
/// An [`io::ErrorKind::InvalidData`] error when the line is not valid JSON
/// for `T`, or any underlying I/O error.
pub fn read_line<R: BufRead, T: Deserialize>(reader: &mut R) -> io::Result<Option<T>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    serde_json::from_str(line.trim_end_matches(['\r', '\n']))
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn requests_and_frames_round_trip_as_single_lines() {
        let request = Request::Submit(SubmitRequest {
            client: "ci".to_string(),
            priority: 3,
            workers: 0,
            segment_size: 10_000,
            speculate: 2,
            timeout_ms: Some(5_000),
            spec: serde_json::from_str(r#"{"version": 2, "name": null, "jobs": []}"#).unwrap(),
        });
        let mut bytes = Vec::new();
        write_line(&mut bytes, &request).unwrap();
        write_line(&mut bytes, &Request::Status).unwrap();
        assert_eq!(bytes.iter().filter(|&&b| b == b'\n').count(), 2);

        let mut reader = BufReader::new(bytes.as_slice());
        let back: Request = read_line(&mut reader).unwrap().expect("first line");
        assert_eq!(back, request);
        let status: Request = read_line(&mut reader).unwrap().expect("second line");
        assert_eq!(status, Request::Status);
        assert_eq!(read_line::<_, Request>(&mut reader).unwrap(), None, "EOF");
    }

    #[test]
    fn terminal_frames_round_trip() {
        for frame in [
            Frame::Accepted(Accepted {
                jobs: 4,
                queue_depth: 1,
                cache_hit: false,
            }),
            Frame::Done(Done {
                jobs: 4,
                cache_hit: true,
            }),
            Frame::ShutdownAck(ShutdownAck { draining: 2 }),
            Frame::Error(ErrorFrame::new(ErrorFrame::QUOTA_EXCEEDED, "over quota")),
        ] {
            let mut bytes = Vec::new();
            write_line(&mut bytes, &frame).unwrap();
            let mut reader = BufReader::new(bytes.as_slice());
            let back: Frame = read_line(&mut reader).unwrap().expect("one frame");
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn version_1_submit_requests_without_timeout_still_decode() {
        // A request rendered by a pre-deadline client has no `timeout_ms`
        // key at all; it must decode with no deadline, not error.
        let line = concat!(
            r#"{"Submit":{"client":"old","priority":0,"workers":0,"#,
            r#""segment_size":0,"speculate":0,"#,
            r#""spec":{"version":2,"name":null,"jobs":[]}}}"#,
            "\n"
        );
        let mut reader = BufReader::new(line.as_bytes());
        let request: Request = read_line(&mut reader).unwrap().expect("decodes");
        match request {
            Request::Submit(submit) => {
                assert_eq!(submit.client, "old");
                assert_eq!(submit.timeout_ms, None);
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn garbage_lines_are_invalid_data_not_panics() {
        let mut reader = BufReader::new(b"not json\n".as_slice());
        let err = read_line::<_, Request>(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
