//! The prioritized submission queue between connection handlers and the
//! scheduler.
//!
//! Ordering is strict: higher [`Queued::priority`] first, ties broken by
//! arrival sequence (lower [`Queued::seq`] first), so equal-priority
//! traffic is FIFO and a flood of low-priority submissions can never starve
//! a later high-priority one.

use crate::protocol::{ErrorFrame, JobFrame};
use engine::{CancelToken, EngineConfig, SimJob};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::mpsc;
use std::time::Instant;

/// An event streamed from the scheduler back to the submitting connection.
#[derive(Debug)]
pub enum Event {
    /// One completed job, in submission order.
    Result(Box<JobFrame>),
    /// The whole submission completed; `jobs` results were streamed.
    Done {
        /// Number of [`Event::Result`]s that preceded this event.
        jobs: u64,
    },
    /// The engine rejected a job; results streamed so far stand.
    Error(ErrorFrame),
}

/// A queued submission: the decoded jobs plus everything the scheduler
/// needs to run them and to account for the outcome.
#[derive(Debug)]
pub struct Submission {
    /// Client identity, for quota release on completion.
    pub client: String,
    /// The jobs, in submission order.
    pub jobs: Vec<SimJob>,
    /// Engine configuration resolved from the request and server defaults.
    pub config: EngineConfig,
    /// Content-addressed identity of (jobs, config); the cache key.
    pub fingerprint: String,
    /// Channel back to the connection handler streaming this submission.
    pub reply: mpsc::Sender<Event>,
    /// When the submission was admitted to the queue, for queue-wait
    /// latency accounting.
    pub queued_at: Instant,
    /// Cooperative cancellation shared between the scheduler's engine run,
    /// the deadline watchdog and the connection handler (a disconnected
    /// client cancels its own submission through this token).
    pub cancel: CancelToken,
    /// Absolute deadline derived from the request's `timeout_ms`, measured
    /// from admission; `None` means the submission never times out.
    pub deadline: Option<Instant>,
}

/// A [`Submission`] with its queue ordering key.
#[derive(Debug)]
pub struct Queued {
    /// Arrival sequence number (unique, monotonically increasing).
    pub seq: u64,
    /// Queue priority: higher runs first.
    pub priority: i64,
    /// The submission itself.
    pub submission: Submission,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for Queued {}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first, then earlier arrival (reversed
        // seq comparison, because BinaryHeap pops the maximum).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The priority queue proper.
#[derive(Debug, Default)]
pub struct SubmissionQueue {
    heap: BinaryHeap<Queued>,
}

impl SubmissionQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a submission.
    pub fn push(&mut self, queued: Queued) {
        self.heap.push(queued);
    }

    /// Removes and returns the highest-priority (then oldest) submission.
    pub fn pop(&mut self) -> Option<Queued> {
        self.heap.pop()
    }

    /// Submissions currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queued(seq: u64, priority: i64) -> Queued {
        let (reply, _rx) = mpsc::channel();
        Queued {
            seq,
            priority,
            submission: Submission {
                client: format!("client-{seq}"),
                jobs: Vec::new(),
                config: EngineConfig::serial(),
                fingerprint: format!("fp-{seq}"),
                reply,
                queued_at: Instant::now(),
                cancel: CancelToken::new(),
                deadline: None,
            },
        }
    }

    #[test]
    fn orders_by_priority_then_arrival() {
        let mut queue = SubmissionQueue::new();
        for (seq, priority) in [(0, 0), (1, 5), (2, 0), (3, 5), (4, -1)] {
            queue.push(queued(seq, priority));
        }
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop().map(|q| q.seq)).collect();
        // Priority 5 first in arrival order, then priority 0 in arrival
        // order, then the negative priority.
        assert_eq!(order, vec![1, 3, 0, 2, 4]);
        assert!(queue.is_empty());
        assert_eq!(queue.len(), 0);
    }
}
