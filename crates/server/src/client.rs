//! A blocking client for the job server: connect, send one request, read
//! the reply stream.  This is what `sms-experiments submit` and the bench
//! pipeline's `served` column are built on.

use crate::protocol::{
    read_line, write_line, Accepted, Done, ErrorFrame, Frame, JobFrame, Request, ShutdownAck,
    SubmitRequest,
};
use engine::JobList;
use metrics::MetricsReport;
use std::fmt;
use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Where the server lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A unix-domain socket path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7807`.
    Tcp(String),
}

impl Endpoint {
    fn connect(&self) -> io::Result<Connection> {
        match self {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Connection::Unix),
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Connection::Tcp),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

enum Connection {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Connection {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Connection::Unix(stream) => stream.read(buf),
            Connection::Tcp(stream) => stream.read(buf),
        }
    }
}

impl Write for Connection {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Connection::Unix(stream) => stream.write(buf),
            Connection::Tcp(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Connection::Unix(stream) => stream.flush(),
            Connection::Tcp(stream) => stream.flush(),
        }
    }
}

/// A client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Connecting, reading or writing failed.
    Io(String),
    /// The server sent something outside the protocol's reply grammar.
    Protocol(String),
    /// The server refused or aborted the request with a structured error.
    Server(ErrorFrame),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(message) => write!(f, "connection failed: {message}"),
            ClientError::Protocol(message) => write!(f, "protocol violation: {message}"),
            ClientError::Server(error) => {
                write!(f, "server error [{}]: {}", error.code, error.message)
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// Per-submission options (everything except the spec itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Client identity for quota accounting.
    pub client: String,
    /// Queue priority: higher runs first.
    pub priority: i64,
    /// Worker threads (`0` = server default).
    pub workers: usize,
    /// Intra-job segment size (`0` = unsegmented).
    pub segment_size: usize,
    /// Speculative run-ahead depth (`0` = off).
    pub speculate: usize,
    /// Submission deadline in milliseconds, measured from admission
    /// (`0` = none).
    pub timeout_ms: u64,
    /// Transport-failure retries: how many times [`submit`] reconnects and
    /// resubmits after a connection-level failure (`0` = fail fast).
    /// Resubmission is safe — the submission is content-addressed, so a
    /// retry of work the server already finished replays the cached frames
    /// instead of recomputing.  Structured server refusals and protocol
    /// violations are never retried.
    pub retries: usize,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        Self {
            client: "anonymous".to_string(),
            priority: 0,
            workers: 0,
            segment_size: 0,
            speculate: 0,
            timeout_ms: 0,
            retries: 0,
        }
    }
}

/// Everything a completed submission returned.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitOutcome {
    /// The acceptance frame (cache-hit flag, queue depth).
    pub accepted: Accepted,
    /// The per-job frames, in submission order.
    pub frames: Vec<JobFrame>,
    /// The terminal frame.
    pub done: Done,
}

/// Submits a job list and blocks until the result stream completes,
/// invoking `on_frame` for each per-job frame as it arrives (before the
/// frame is appended to the returned outcome).
///
/// Connection-level failures ([`ClientError::Io`]) are retried up to
/// `options.retries` times with exponential backoff (50 ms doubling, capped
/// at 1 s), reconnecting and resubmitting from scratch each time; `on_frame`
/// may therefore see a prefix of frames more than once across attempts.
/// Structured refusals and protocol violations fail immediately — the
/// server answered, so resubmitting the same request cannot help.
///
/// # Errors
///
/// [`ClientError::Server`] for a structured refusal (bad spec, quota,
/// shutdown, engine failure), [`ClientError::Io`] /
/// [`ClientError::Protocol`] for transport or grammar violations
/// ([`ClientError::Io`] only after the configured retries are exhausted).
pub fn submit(
    endpoint: &Endpoint,
    list: &JobList,
    options: &SubmitOptions,
    on_frame: &mut dyn FnMut(&JobFrame),
) -> Result<SubmitOutcome, ClientError> {
    let mut backoff = Duration::from_millis(50);
    let mut attempts_left = options.retries;
    loop {
        match submit_once(endpoint, list, options, on_frame) {
            Err(ClientError::Io(_)) if attempts_left > 0 => {
                attempts_left -= 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(1));
            }
            outcome => return outcome,
        }
    }
}

/// One connect-submit-stream attempt; [`submit`] adds the retry loop.
fn submit_once(
    endpoint: &Endpoint,
    list: &JobList,
    options: &SubmitOptions,
    on_frame: &mut dyn FnMut(&JobFrame),
) -> Result<SubmitOutcome, ClientError> {
    let request = Request::Submit(SubmitRequest {
        client: options.client.clone(),
        priority: options.priority,
        workers: options.workers,
        segment_size: options.segment_size,
        speculate: options.speculate,
        timeout_ms: (options.timeout_ms > 0).then_some(options.timeout_ms),
        spec: serde_json::to_value(list).expect("value-tree serialization cannot fail"),
    });
    let mut reader = send(endpoint, &request)?;
    let accepted = match next_frame(&mut reader)? {
        Frame::Accepted(accepted) => accepted,
        Frame::Error(error) => return Err(ClientError::Server(error)),
        other => {
            return Err(ClientError::Protocol(format!(
                "expected Accepted, got {other:?}"
            )))
        }
    };
    let mut frames = Vec::new();
    loop {
        match next_frame(&mut reader)? {
            Frame::Result(frame) => {
                on_frame(&frame);
                frames.push(*frame);
            }
            Frame::Done(done) => {
                return Ok(SubmitOutcome {
                    accepted,
                    frames,
                    done,
                })
            }
            Frame::Error(error) => return Err(ClientError::Server(error)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected Result or Done, got {other:?}"
                )))
            }
        }
    }
}

/// Asks for the server's counters.
///
/// # Errors
///
/// As [`submit`].
pub fn status(endpoint: &Endpoint) -> Result<MetricsReport, ClientError> {
    let mut reader = send(endpoint, &Request::Status)?;
    match next_frame(&mut reader)? {
        Frame::Metrics(report) => Ok(report),
        Frame::Error(error) => Err(ClientError::Server(error)),
        other => Err(ClientError::Protocol(format!(
            "expected Metrics, got {other:?}"
        ))),
    }
}

/// Requests graceful shutdown.
///
/// # Errors
///
/// As [`submit`].
pub fn shutdown(endpoint: &Endpoint) -> Result<ShutdownAck, ClientError> {
    let mut reader = send(endpoint, &Request::Shutdown)?;
    match next_frame(&mut reader)? {
        Frame::ShutdownAck(ack) => Ok(ack),
        Frame::Error(error) => Err(ClientError::Server(error)),
        other => Err(ClientError::Protocol(format!(
            "expected ShutdownAck, got {other:?}"
        ))),
    }
}

fn send(endpoint: &Endpoint, request: &Request) -> Result<BufReader<Connection>, ClientError> {
    let mut connection = endpoint
        .connect()
        .map_err(|e| ClientError::Io(format!("{endpoint}: {e}")))?;
    write_line(&mut connection, request)?;
    Ok(BufReader::new(connection))
}

fn next_frame(reader: &mut BufReader<Connection>) -> Result<Frame, ClientError> {
    match read_line(reader) {
        Ok(Some(frame)) => Ok(frame),
        Ok(None) => Err(ClientError::Protocol(
            "server closed the connection mid-reply".to_string(),
        )),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            Err(ClientError::Protocol(e.to_string()))
        }
        Err(e) => Err(ClientError::Io(e.to_string())),
    }
}
