//! The content-addressed result cache.
//!
//! Jobs are deterministic, so [`engine::spec_fingerprint`] — the canonical
//! hash of the jobs plus the engine-relevant execution parameters — fully
//! identifies a submission's result bytes.  The cache maps that fingerprint
//! to the recorded stream of [`JobFrame`]s; a hit replays the original
//! frames verbatim, including the original run's [`engine::JobMetrics`]
//! (telemetry of the run that produced the bytes, not of the lookup).
//!
//! The cache is bounded by an optional entry budget and an optional byte
//! budget (serialized frame bytes).  When an insert pushes the cache over
//! either budget, the **least recently used** entries are evicted until it
//! fits again — a hit refreshes an entry's recency, so the resident set
//! tracks the live experiment catalog.  A single entry larger than the
//! whole byte budget is evicted immediately after insertion (it can never
//! fit), which degrades that fingerprint to recompute-on-every-submission
//! rather than letting one oversized result pin the cache.  Evictions are
//! counted for the server's telemetry.
//!
//! # Persistence
//!
//! With [`ResultCache::attach_dir`] the cache becomes durable: every insert
//! writes a checksummed entry file (`<fingerprint>.smsc`, written to a temp
//! name and renamed so a crash never leaves a half-written entry under the
//! real name), evictions delete the file, and a restart reloads whatever
//! the directory holds.  Recovery is **corruption-tolerant**: an entry that
//! is truncated, fails its FNV-1a checksum, or does not parse is skipped
//! and counted ([`ResultCache::load_skipped`]) — one bad file costs one
//! recomputation, never the startup.

use crate::protocol::JobFrame;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One cached result stream with its bookkeeping.
#[derive(Debug)]
struct Entry {
    frames: Vec<JobFrame>,
    /// Serialized size of `frames`, the unit of the byte budget.
    bytes: u64,
    /// Recency stamp: the cache-wide tick of the last insert or hit.
    tick: u64,
}

/// Fingerprint-keyed store of recorded result streams with LRU eviction
/// and hit/miss/eviction counters for the server's telemetry.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: HashMap<String, Entry>,
    /// Maximum resident entries (`0` = unlimited).
    max_entries: usize,
    /// Maximum resident serialized bytes (`0` = unlimited).
    max_bytes: u64,
    /// Serialized bytes currently resident.
    bytes: u64,
    /// Monotonic recency clock, bumped on every insert and hit.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    evicted_bytes: u64,
    /// Directory entries are persisted into, when attached.
    dir: Option<PathBuf>,
    /// Entries reloaded from the directory at attach time.
    loaded: u64,
    /// Corrupt or truncated entry files skipped at attach time.
    load_skipped: u64,
    /// Entry writes that failed (persistence is best-effort; the in-memory
    /// cache stays authoritative).
    persist_failures: u64,
}

impl ResultCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with the given budgets (`0` = unlimited for each).
    pub fn with_budget(max_entries: usize, max_bytes: u64) -> Self {
        Self {
            max_entries,
            max_bytes,
            ..Self::default()
        }
    }

    /// Looks up a fingerprint, counting the outcome; a hit refreshes the
    /// entry's recency and clones the recorded frames for replay.
    pub fn lookup(&mut self, fingerprint: &str) -> Option<Vec<JobFrame>> {
        self.tick += 1;
        match self.entries.get_mut(fingerprint) {
            Some(entry) => {
                entry.tick = self.tick;
                self.hits += 1;
                Some(entry.frames.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a completed submission's frames, then evicts least recently
    /// used entries until the budgets hold.  Re-inserting an existing
    /// fingerprint refreshes its recency but keeps the first recording:
    /// determinism guarantees the bytes match, and keeping the original
    /// makes concurrent identical submissions idempotent.  With a directory
    /// attached, a fresh entry is also persisted to disk.
    pub fn insert(&mut self, fingerprint: String, frames: Vec<JobFrame>) {
        self.insert_inner(fingerprint, frames, true);
    }

    fn insert_inner(&mut self, fingerprint: String, frames: Vec<JobFrame>, persist: bool) {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.entry(fingerprint) {
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                occupied.get_mut().tick = tick;
            }
            std::collections::hash_map::Entry::Vacant(vacant) => {
                let bytes = serialized_bytes(&frames);
                self.bytes += bytes;
                if persist {
                    if let Some(dir) = &self.dir {
                        let fingerprint = vacant.key().clone();
                        if persist_entry(dir, &fingerprint, &frames).is_err() {
                            self.persist_failures += 1;
                        }
                    }
                }
                vacant.insert(Entry {
                    frames,
                    bytes,
                    tick,
                });
            }
        }
        self.enforce_budget();
    }

    /// Evicts least-recently-used entries while either budget is exceeded,
    /// deleting the persisted files of evicted entries so the directory
    /// tracks the resident set.
    fn enforce_budget(&mut self) {
        while self.over_budget() {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.tick)
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            let entry = self.entries.remove(&oldest).expect("key just observed");
            self.bytes -= entry.bytes;
            self.evictions += 1;
            self.evicted_bytes += entry.bytes;
            if let Some(dir) = &self.dir {
                std::fs::remove_file(entry_path(dir, &oldest)).ok();
            }
        }
    }

    /// Attaches a persistence directory: creates it if missing, reloads
    /// every readable entry it holds (in sorted filename order, so recency
    /// after a restart is deterministic), and persists future inserts into
    /// it.  Corrupt, truncated or misnamed entry files are skipped and
    /// counted, never fatal.
    ///
    /// # Errors
    ///
    /// Only when the directory itself cannot be created or read — a server
    /// asked to persist into an unusable path should fail loudly at startup
    /// rather than run silently non-durable.
    pub fn attach_dir(&mut self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut names: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| path.extension().is_some_and(|ext| ext == ENTRY_EXTENSION))
            .collect();
        names.sort();
        for path in names {
            let fingerprint = match path.file_stem().and_then(|stem| stem.to_str()) {
                Some(stem) => stem.to_string(),
                None => {
                    self.load_skipped += 1;
                    continue;
                }
            };
            let frames = match std::fs::read(&path).ok().and_then(|b| decode_entry(&b)) {
                Some(frames) => frames,
                None => {
                    self.load_skipped += 1;
                    continue;
                }
            };
            self.loaded += 1;
            self.insert_inner(fingerprint, frames, false);
        }
        self.dir = Some(dir.to_path_buf());
        Ok(())
    }

    /// Entries reloaded from the attached directory.
    pub fn loaded(&self) -> u64 {
        self.loaded
    }

    /// Corrupt or truncated entry files skipped while reloading.
    pub fn load_skipped(&self) -> u64 {
        self.load_skipped
    }

    /// Entry writes that failed (persistence is best-effort).
    pub fn persist_failures(&self) -> u64 {
        self.persist_failures
    }

    fn over_budget(&self) -> bool {
        (self.max_entries > 0 && self.entries.len() > self.max_entries)
            || (self.max_bytes > 0 && self.bytes > self.max_bytes)
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of recorded entries currently resident.
    pub fn entries(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Serialized bytes currently resident.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Entries evicted to hold the budgets.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Serialized bytes reclaimed by evictions.
    pub fn evicted_bytes(&self) -> u64 {
        self.evicted_bytes
    }
}

/// Extension of persisted cache entry files.
const ENTRY_EXTENSION: &str = "smsc";

/// Magic + format version of the entry-file header line.
const ENTRY_MAGIC: &str = "SMSCACHE 1";

/// Path of a fingerprint's entry file inside the attached directory.
fn entry_path(dir: &Path, fingerprint: &str) -> PathBuf {
    dir.join(format!("{fingerprint}.{ENTRY_EXTENSION}"))
}

/// Encodes a frame stream as a self-validating entry file:
/// `SMSCACHE 1 <fnv1a-hex> <payload-len>\n` followed by the JSON payload.
/// The length catches truncation cheaply; the checksum catches corruption.
fn encode_entry(frames: &[JobFrame]) -> Vec<u8> {
    let payload = serde_json::to_string(&frames).expect("value-tree serialization cannot fail");
    let mut bytes = format!(
        "{ENTRY_MAGIC} {:016x} {}\n",
        engine::fnv1a_64(payload.as_bytes()),
        payload.len()
    )
    .into_bytes();
    bytes.extend_from_slice(payload.as_bytes());
    bytes
}

/// Decodes an entry file, returning `None` for anything malformed: a wrong
/// magic or version, a header that does not parse, a payload whose length or
/// checksum disagrees with the header, or JSON that no longer decodes.
fn decode_entry(bytes: &[u8]) -> Option<Vec<JobFrame>> {
    let newline = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..newline]).ok()?;
    let rest = header.strip_prefix(ENTRY_MAGIC)?.trim_start();
    let mut fields = rest.split_ascii_whitespace();
    let checksum = u64::from_str_radix(fields.next()?, 16).ok()?;
    let length: usize = fields.next()?.parse().ok()?;
    if fields.next().is_some() {
        return None;
    }
    let payload = &bytes[newline + 1..];
    if payload.len() != length || engine::fnv1a_64(payload) != checksum {
        return None;
    }
    serde_json::from_str(std::str::from_utf8(payload).ok()?).ok()
}

/// Writes a fingerprint's entry file atomically: the bytes land under a
/// temp name first and are renamed into place, so a crash mid-write leaves
/// at worst a stray temp file, never a half-written entry.
fn persist_entry(dir: &Path, fingerprint: &str, frames: &[JobFrame]) -> std::io::Result<()> {
    let tmp = dir.join(format!(".{fingerprint}.tmp"));
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(&encode_entry(frames))?;
    file.sync_all()?;
    std::fs::rename(&tmp, entry_path(dir, fingerprint))
}

/// Serialized size of a frame stream — the byte-budget unit, chosen because
/// it tracks what a hit actually saves (bytes recomputed and re-streamed)
/// and is stable across platforms, unlike in-memory size.
fn serialized_bytes(frames: &[JobFrame]) -> u64 {
    frames
        .iter()
        .map(|frame| {
            serde_json::to_string(frame)
                .expect("value-tree serialization cannot fail")
                .len() as u64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::JobMetrics;

    #[test]
    fn lookup_counts_and_replays_identical_frames() {
        let mut cache = ResultCache::new();
        assert_eq!(cache.lookup("abc"), None);
        assert_eq!((cache.hits(), cache.misses(), cache.entries()), (0, 1, 0));

        cache.insert("abc".to_string(), Vec::new());
        assert_eq!(cache.lookup("abc"), Some(Vec::new()));
        assert_eq!((cache.hits(), cache.misses(), cache.entries()), (1, 1, 1));

        // First recording wins; the counters keep accumulating.
        cache.insert("abc".to_string(), Vec::new());
        assert_eq!(cache.entries(), 1);
    }

    fn frame(tag: u64) -> JobFrame {
        JobFrame {
            result: engine::JobResult {
                job_index: tag as usize,
                summary: memsim::RunSummary::default(),
                probe: engine::ProbeReport::none(),
                timing: None,
                warnings: Vec::new(),
            },
            metrics: JobMetrics::default(),
        }
    }

    #[test]
    fn entry_budget_evicts_least_recently_used() {
        let mut cache = ResultCache::with_budget(2, 0);
        cache.insert("a".to_string(), vec![frame(1)]);
        cache.insert("b".to_string(), vec![frame(2)]);
        // Touch "a" so "b" becomes the LRU victim.
        assert!(cache.lookup("a").is_some());
        cache.insert("c".to_string(), vec![frame(3)]);

        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup("a").is_some(), "recently used survives");
        assert!(cache.lookup("c").is_some(), "just inserted survives");
        assert!(cache.lookup("b").is_none(), "LRU entry evicted");
    }

    #[test]
    fn byte_budget_evicts_and_counts_reclaimed_bytes() {
        let one_frame_bytes = serialized_bytes(&[frame(0)]);
        // Room for two single-frame entries but not three.
        let mut cache = ResultCache::with_budget(0, one_frame_bytes * 2);
        cache.insert("a".to_string(), vec![frame(1)]);
        cache.insert("b".to_string(), vec![frame(2)]);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.bytes(), one_frame_bytes * 2);

        cache.insert("c".to_string(), vec![frame(3)]);
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.evicted_bytes(), one_frame_bytes);
        assert_eq!(cache.bytes(), one_frame_bytes * 2);
        assert!(cache.lookup("a").is_none(), "oldest entry evicted");
    }

    #[test]
    fn oversized_lone_entry_cannot_pin_the_cache() {
        let mut cache = ResultCache::with_budget(0, 1);
        cache.insert("huge".to_string(), vec![frame(1), frame(2)]);
        assert_eq!(cache.entries(), 0, "an entry over the whole budget goes");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.bytes(), 0);
        assert!(cache.lookup("huge").is_none());
    }

    /// A fresh, empty scratch directory unique to the calling test.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sms-cache-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn entries_survive_a_restart_through_the_attached_dir() {
        let dir = scratch("restart");
        let mut first = ResultCache::new();
        first.attach_dir(&dir).unwrap();
        first.insert("aaaa".to_string(), vec![frame(1)]);
        first.insert("bbbb".to_string(), vec![frame(2), frame(3)]);
        drop(first);

        let mut reborn = ResultCache::new();
        reborn.attach_dir(&dir).unwrap();
        assert_eq!(reborn.loaded(), 2);
        assert_eq!(reborn.load_skipped(), 0);
        assert_eq!(reborn.lookup("aaaa"), Some(vec![frame(1)]));
        assert_eq!(reborn.lookup("bbbb"), Some(vec![frame(2), frame(3)]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_and_truncated_entry_files_are_skipped_not_fatal() {
        let dir = scratch("corrupt");
        let mut writer = ResultCache::new();
        writer.attach_dir(&dir).unwrap();
        writer.insert("good".to_string(), vec![frame(7)]);
        drop(writer);

        // Flipped payload byte: checksum mismatch.
        let good = std::fs::read(entry_path(&dir, "good")).unwrap();
        let mut flipped = good.clone();
        *flipped.last_mut().unwrap() ^= 0x01;
        std::fs::write(entry_path(&dir, "flipped"), &flipped).unwrap();
        // Truncated payload: length mismatch.
        std::fs::write(entry_path(&dir, "short"), &good[..good.len() - 3]).unwrap();
        // Not an entry file at all.
        std::fs::write(entry_path(&dir, "noise"), b"hello\nworld").unwrap();

        let mut reborn = ResultCache::new();
        reborn.attach_dir(&dir).unwrap();
        assert_eq!(reborn.loaded(), 1, "only the intact entry loads");
        assert_eq!(reborn.load_skipped(), 3);
        assert_eq!(reborn.lookup("good"), Some(vec![frame(7)]));
        assert_eq!(reborn.lookup("flipped"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_deletes_the_persisted_file() {
        let dir = scratch("evict");
        let mut cache = ResultCache::with_budget(1, 0);
        cache.attach_dir(&dir).unwrap();
        cache.insert("first".to_string(), vec![frame(1)]);
        cache.insert("second".to_string(), vec![frame(2)]);
        assert_eq!(cache.evictions(), 1);
        assert!(!entry_path(&dir, "first").exists(), "evicted file removed");
        assert!(entry_path(&dir, "second").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn entry_encoding_round_trips_and_rejects_tampering() {
        let frames = vec![frame(1), frame(2)];
        let bytes = encode_entry(&frames);
        assert_eq!(decode_entry(&bytes), Some(frames));
        assert_eq!(decode_entry(b""), None);
        assert_eq!(decode_entry(b"SMSCACHE 1\n"), None);
        assert_eq!(decode_entry(b"SMSCACHE 2 0123 4\nabcd"), None, "version");
        let mut tampered = bytes.clone();
        *tampered.last_mut().unwrap() ^= 0x40;
        assert_eq!(decode_entry(&tampered), None, "checksum");
        assert_eq!(decode_entry(&bytes[..bytes.len() - 1]), None, "length");
    }
}
