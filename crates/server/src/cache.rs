//! The content-addressed result cache.
//!
//! Jobs are deterministic, so [`engine::spec_fingerprint`] — the canonical
//! hash of the jobs plus the engine-relevant execution parameters — fully
//! identifies a submission's result bytes.  The cache maps that fingerprint
//! to the recorded stream of [`JobFrame`]s; a hit replays the original
//! frames verbatim, including the original run's [`engine::JobMetrics`]
//! (telemetry of the run that produced the bytes, not of the lookup).
//!
//! The cache is bounded by an optional entry budget and an optional byte
//! budget (serialized frame bytes).  When an insert pushes the cache over
//! either budget, the **least recently used** entries are evicted until it
//! fits again — a hit refreshes an entry's recency, so the resident set
//! tracks the live experiment catalog.  A single entry larger than the
//! whole byte budget is evicted immediately after insertion (it can never
//! fit), which degrades that fingerprint to recompute-on-every-submission
//! rather than letting one oversized result pin the cache.  Evictions are
//! counted for the server's telemetry.

use crate::protocol::JobFrame;
use std::collections::HashMap;

/// One cached result stream with its bookkeeping.
#[derive(Debug)]
struct Entry {
    frames: Vec<JobFrame>,
    /// Serialized size of `frames`, the unit of the byte budget.
    bytes: u64,
    /// Recency stamp: the cache-wide tick of the last insert or hit.
    tick: u64,
}

/// Fingerprint-keyed store of recorded result streams with LRU eviction
/// and hit/miss/eviction counters for the server's telemetry.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: HashMap<String, Entry>,
    /// Maximum resident entries (`0` = unlimited).
    max_entries: usize,
    /// Maximum resident serialized bytes (`0` = unlimited).
    max_bytes: u64,
    /// Serialized bytes currently resident.
    bytes: u64,
    /// Monotonic recency clock, bumped on every insert and hit.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    evicted_bytes: u64,
}

impl ResultCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with the given budgets (`0` = unlimited for each).
    pub fn with_budget(max_entries: usize, max_bytes: u64) -> Self {
        Self {
            max_entries,
            max_bytes,
            ..Self::default()
        }
    }

    /// Looks up a fingerprint, counting the outcome; a hit refreshes the
    /// entry's recency and clones the recorded frames for replay.
    pub fn lookup(&mut self, fingerprint: &str) -> Option<Vec<JobFrame>> {
        self.tick += 1;
        match self.entries.get_mut(fingerprint) {
            Some(entry) => {
                entry.tick = self.tick;
                self.hits += 1;
                Some(entry.frames.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a completed submission's frames, then evicts least recently
    /// used entries until the budgets hold.  Re-inserting an existing
    /// fingerprint refreshes its recency but keeps the first recording:
    /// determinism guarantees the bytes match, and keeping the original
    /// makes concurrent identical submissions idempotent.
    pub fn insert(&mut self, fingerprint: String, frames: Vec<JobFrame>) {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.entry(fingerprint) {
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                occupied.get_mut().tick = tick;
            }
            std::collections::hash_map::Entry::Vacant(vacant) => {
                let bytes = serialized_bytes(&frames);
                self.bytes += bytes;
                vacant.insert(Entry {
                    frames,
                    bytes,
                    tick,
                });
            }
        }
        self.enforce_budget();
    }

    /// Evicts least-recently-used entries while either budget is exceeded.
    fn enforce_budget(&mut self) {
        while self.over_budget() {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.tick)
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            let entry = self.entries.remove(&oldest).expect("key just observed");
            self.bytes -= entry.bytes;
            self.evictions += 1;
            self.evicted_bytes += entry.bytes;
        }
    }

    fn over_budget(&self) -> bool {
        (self.max_entries > 0 && self.entries.len() > self.max_entries)
            || (self.max_bytes > 0 && self.bytes > self.max_bytes)
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of recorded entries currently resident.
    pub fn entries(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Serialized bytes currently resident.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Entries evicted to hold the budgets.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Serialized bytes reclaimed by evictions.
    pub fn evicted_bytes(&self) -> u64 {
        self.evicted_bytes
    }
}

/// Serialized size of a frame stream — the byte-budget unit, chosen because
/// it tracks what a hit actually saves (bytes recomputed and re-streamed)
/// and is stable across platforms, unlike in-memory size.
fn serialized_bytes(frames: &[JobFrame]) -> u64 {
    frames
        .iter()
        .map(|frame| {
            serde_json::to_string(frame)
                .expect("value-tree serialization cannot fail")
                .len() as u64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::JobMetrics;

    #[test]
    fn lookup_counts_and_replays_identical_frames() {
        let mut cache = ResultCache::new();
        assert_eq!(cache.lookup("abc"), None);
        assert_eq!((cache.hits(), cache.misses(), cache.entries()), (0, 1, 0));

        cache.insert("abc".to_string(), Vec::new());
        assert_eq!(cache.lookup("abc"), Some(Vec::new()));
        assert_eq!((cache.hits(), cache.misses(), cache.entries()), (1, 1, 1));

        // First recording wins; the counters keep accumulating.
        cache.insert("abc".to_string(), Vec::new());
        assert_eq!(cache.entries(), 1);
    }

    fn frame(tag: u64) -> JobFrame {
        JobFrame {
            result: engine::JobResult {
                job_index: tag as usize,
                summary: memsim::RunSummary::default(),
                probe: engine::ProbeReport::none(),
                timing: None,
                warnings: Vec::new(),
            },
            metrics: JobMetrics::default(),
        }
    }

    #[test]
    fn entry_budget_evicts_least_recently_used() {
        let mut cache = ResultCache::with_budget(2, 0);
        cache.insert("a".to_string(), vec![frame(1)]);
        cache.insert("b".to_string(), vec![frame(2)]);
        // Touch "a" so "b" becomes the LRU victim.
        assert!(cache.lookup("a").is_some());
        cache.insert("c".to_string(), vec![frame(3)]);

        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup("a").is_some(), "recently used survives");
        assert!(cache.lookup("c").is_some(), "just inserted survives");
        assert!(cache.lookup("b").is_none(), "LRU entry evicted");
    }

    #[test]
    fn byte_budget_evicts_and_counts_reclaimed_bytes() {
        let one_frame_bytes = serialized_bytes(&[frame(0)]);
        // Room for two single-frame entries but not three.
        let mut cache = ResultCache::with_budget(0, one_frame_bytes * 2);
        cache.insert("a".to_string(), vec![frame(1)]);
        cache.insert("b".to_string(), vec![frame(2)]);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.bytes(), one_frame_bytes * 2);

        cache.insert("c".to_string(), vec![frame(3)]);
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.evicted_bytes(), one_frame_bytes);
        assert_eq!(cache.bytes(), one_frame_bytes * 2);
        assert!(cache.lookup("a").is_none(), "oldest entry evicted");
    }

    #[test]
    fn oversized_lone_entry_cannot_pin_the_cache() {
        let mut cache = ResultCache::with_budget(0, 1);
        cache.insert("huge".to_string(), vec![frame(1), frame(2)]);
        assert_eq!(cache.entries(), 0, "an entry over the whole budget goes");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.bytes(), 0);
        assert!(cache.lookup("huge").is_none());
    }
}
