//! The content-addressed result cache.
//!
//! Jobs are deterministic, so [`engine::spec_fingerprint`] — the canonical
//! hash of the jobs plus the engine-relevant execution parameters — fully
//! identifies a submission's result bytes.  The cache maps that fingerprint
//! to the recorded stream of [`JobFrame`]s; a hit replays the original
//! frames verbatim, including the original run's [`engine::JobMetrics`]
//! (telemetry of the run that produced the bytes, not of the lookup).
//!
//! Entries are never evicted: a resident server's working set is the
//! experiment catalog, which is small relative to the cost of recomputing
//! any entry.  (Eviction policy becomes interesting with the sweep driver
//! of ROADMAP direction 4; the fingerprint contract here does not change.)

use crate::protocol::JobFrame;
use std::collections::HashMap;

/// Fingerprint-keyed store of recorded result streams, with hit/miss
/// counters for the server's telemetry.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: HashMap<String, Vec<JobFrame>>,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a fingerprint, counting the outcome; a hit clones the
    /// recorded frames for replay.
    pub fn lookup(&mut self, fingerprint: &str) -> Option<Vec<JobFrame>> {
        match self.entries.get(fingerprint) {
            Some(frames) => {
                self.hits += 1;
                Some(frames.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a completed submission's frames.  Re-inserting an existing
    /// fingerprint is a no-op: determinism guarantees the bytes match, and
    /// keeping the first recording makes concurrent identical submissions
    /// idempotent.
    pub fn insert(&mut self, fingerprint: String, frames: Vec<JobFrame>) {
        self.entries.entry(fingerprint).or_insert(frames);
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of recorded entries.
    pub fn entries(&self) -> u64 {
        self.entries.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_counts_and_replays_identical_frames() {
        let mut cache = ResultCache::new();
        assert_eq!(cache.lookup("abc"), None);
        assert_eq!((cache.hits(), cache.misses(), cache.entries()), (0, 1, 0));

        cache.insert("abc".to_string(), Vec::new());
        assert_eq!(cache.lookup("abc"), Some(Vec::new()));
        assert_eq!((cache.hits(), cache.misses(), cache.entries()), (1, 1, 1));

        // First recording wins; the counters keep accumulating.
        cache.insert("abc".to_string(), Vec::new());
        assert_eq!(cache.entries(), 1);
    }
}
