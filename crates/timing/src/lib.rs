//! A cycle-approximate multiprocessor timing model for the SMS reproduction.
//!
//! The paper evaluates performance with FLEXUS, a cycle-accurate full-system
//! simulator of out-of-order cores.  Reimplementing that fidelity is outside
//! the scope of a trace-driven reproduction, so this crate provides a
//! first-order analytical model that captures the effects the paper's
//! performance discussion hinges on:
//!
//! * off-chip and on-chip read stalls proportional to the miss counts the
//!   cache simulation produces, with miss latency divided by the
//!   memory-level parallelism (MLP) available in an out-of-order window —
//!   this is what mutes OLTP speedups relative to coverage (Section 4.7);
//! * a store-buffer occupancy model that exposes store-bound phases such as
//!   DSS query 1, where streaming loads cannot help;
//! * busy time split into user and system components; and
//! * per-segment cycle counts so paired-measurement sampling can attach 95 %
//!   confidence intervals to speedups (Figure 12) and produce normalized
//!   execution-time breakdowns (Figure 13).
//!
//! # Example
//!
//! ```
//! use timing::{TimingConfig, TimingModel};
//! use memsim::HierarchyConfig;
//! use sms::{SmsConfig, SmsPrefetcher};
//! use memsim::NullPrefetcher;
//! use trace::{Application, GeneratorConfig};
//!
//! let gen_cfg = GeneratorConfig::default().with_cpus(2);
//! let model = TimingModel::new(HierarchyConfig::scaled(), 2, TimingConfig::default());
//!
//! let mut base = NullPrefetcher::new();
//! let mut stream = Application::Sparse.stream(1, &gen_cfg);
//! let (base_result, base_summary) = model.evaluate(&mut base, &mut stream, 20_000, 10);
//!
//! let mut sms = SmsPrefetcher::new(2, &SmsConfig::default());
//! let mut stream = Application::Sparse.stream(1, &gen_cfg);
//! let (sms_result, _) = model.evaluate(&mut sms, &mut stream, 20_000, 10);
//!
//! assert!(sms_result.total_cycles <= base_result.total_cycles);
//! assert_eq!(base_summary.accesses, 20_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod breakdown;
pub mod config;
pub mod model;
pub mod speedup;

pub use breakdown::TimeBreakdown;
pub use config::TimingConfig;
pub use model::{TimingAccounting, TimingModel, TimingResult};
pub use speedup::{speedup_with_ci, BreakdownComparison};
