//! Timing-model parameters (derived from Table 1 of the paper).

use serde::{Deserialize, Serialize};

/// Latencies and window sizes used by the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// L2 hit latency in cycles (Table 1: 25 cycles).
    pub l2_hit_cycles: f64,
    /// Off-chip access latency in cycles (Table 1: 60 ns at 4 GHz ≈ 240
    /// cycles, plus interconnect hops).
    pub memory_cycles: f64,
    /// Out-of-order window, expressed in demand accesses, over which read
    /// misses can overlap (approximates the 256-entry ROB / 32 MSHRs).
    pub overlap_window_accesses: usize,
    /// Maximum read misses that can overlap (MSHRs).
    pub max_mlp: usize,
    /// Store-buffer capacity in entries (Table 1: 64).
    pub store_buffer_entries: usize,
    /// Stores that miss drain at this many cycles per entry once the memory
    /// system serializes them.
    pub store_drain_cycles: f64,
    /// Stores that can drain in parallel.
    pub store_mlp: usize,
    /// Busy cycles charged per committed access (user + system).
    pub busy_cycles_per_access: f64,
    /// Fraction of busy time attributed to the operating system.
    pub system_busy_fraction: f64,
    /// Constant per-access stall charged to the "other" category (branch
    /// mispredictions, instruction-cache misses, ...).
    pub other_stall_per_access: f64,
}

impl TimingConfig {
    /// Parameters matching Table 1 of the paper.
    pub fn table1() -> Self {
        Self {
            l2_hit_cycles: 25.0,
            memory_cycles: 300.0,
            overlap_window_accesses: 64,
            max_mlp: 32,
            store_buffer_entries: 64,
            store_drain_cycles: 300.0,
            store_mlp: 8,
            busy_cycles_per_access: 1.0,
            system_busy_fraction: 0.15,
            other_stall_per_access: 0.4,
        }
    }

    /// Returns a copy with a different system-busy fraction (commercial
    /// workloads spend noticeably more time in the OS than scientific ones).
    pub fn with_system_busy_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        self.system_busy_fraction = fraction;
        self
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_are_sane() {
        let c = TimingConfig::table1();
        assert!(c.memory_cycles > c.l2_hit_cycles);
        assert!(c.max_mlp >= 1);
        assert!(c.store_buffer_entries > 0);
        assert_eq!(c, TimingConfig::default());
    }

    #[test]
    fn builder_sets_fraction() {
        let c = TimingConfig::default().with_system_busy_fraction(0.3);
        assert!((c.system_busy_fraction - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_rejected() {
        let _ = TimingConfig::default().with_system_busy_fraction(2.0);
    }
}
