//! The timing model proper.

use crate::breakdown::TimeBreakdown;
use crate::config::TimingConfig;
use memsim::{HierarchyConfig, MultiCpuSystem, PrefetchLevel, Prefetcher, RunSummary};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use trace::MemAccess;

/// Result of evaluating one system configuration on a trace.
///
/// The underlying cache-simulation [`RunSummary`] is returned alongside this
/// by [`TimingModel::evaluate`] rather than embedded, so callers that carry
/// both (such as the engine's job results) hold exactly one copy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingResult {
    /// Estimated total cycles summed over all processors.
    pub total_cycles: f64,
    /// Cycle breakdown by category.
    pub breakdown: TimeBreakdown,
    /// Cycles accumulated in each trace segment (for paired sampling).
    pub segment_cycles: Vec<f64>,
    /// Demand accesses simulated (the unit of completed work).
    pub accesses: u64,
}

impl TimingResult {
    /// Cycles per access — lower is faster; the reciprocal is proportional to
    /// the paper's user-IPC throughput metric.
    pub fn cycles_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_cycles / self.accesses as f64
        }
    }
}

/// Per-CPU dynamic state maintained while walking the trace.
#[derive(Debug, Clone)]
struct CpuTimingState {
    /// Access indices (per-CPU) of recent read misses, used to estimate MLP.
    recent_misses: VecDeque<u64>,
    /// Per-CPU access counter.
    accesses: u64,
    /// Outstanding store-buffer drain work, in cycles.
    store_backlog: f64,
}

impl CpuTimingState {
    fn new() -> Self {
        Self {
            recent_misses: VecDeque::new(),
            accesses: 0,
            store_backlog: 0.0,
        }
    }
}

/// The per-access cycle accounting of the timing model, separated from the
/// cache simulation it observes.
///
/// [`TimingModel::evaluate`] drives an instance inline; the engine's segment
/// pipeline drives one on the accounting stage from each segment's outcome
/// tape.  Both paths call [`observe`](Self::observe) with identical inputs in
/// identical order, and every floating-point operation lives here, so the
/// accumulated cycles are bit-identical regardless of which path ran.
#[derive(Debug, Clone)]
pub struct TimingAccounting {
    config: TimingConfig,
    cpu_state: Vec<CpuTimingState>,
    breakdown: TimeBreakdown,
    segment_cycles: Vec<f64>,
    segment_len: usize,
    accesses_done: u64,
}

impl TimingAccounting {
    /// Creates accounting state for `num_cpus` processors over a planned run
    /// of `num_accesses` accesses split into `segments` paired-sampling
    /// segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn new(
        num_cpus: usize,
        config: TimingConfig,
        num_accesses: usize,
        segments: usize,
    ) -> Self {
        assert!(segments > 0, "need at least one segment");
        Self {
            config,
            cpu_state: (0..num_cpus).map(|_| CpuTimingState::new()).collect(),
            breakdown: TimeBreakdown::new(),
            segment_cycles: vec![0.0; segments],
            segment_len: (num_accesses / segments).max(1),
            accesses_done: 0,
        }
    }

    /// Demand accesses accounted so far.
    pub fn accesses_done(&self) -> u64 {
        self.accesses_done
    }

    /// Accounts one (non-skipped) demand access, given the outcome bits the
    /// cache simulation produced for it.
    pub fn observe(&mut self, access: &MemAccess, l1_miss: bool, offchip: bool) {
        let cfg = &self.config;
        let state = &mut self.cpu_state[access.cpu as usize];
        state.accesses += 1;
        let mut cycles_this_access = cfg.busy_cycles_per_access + cfg.other_stall_per_access;
        self.breakdown.user_busy += cfg.busy_cycles_per_access * (1.0 - cfg.system_busy_fraction);
        self.breakdown.system_busy += cfg.busy_cycles_per_access * cfg.system_busy_fraction;
        self.breakdown.other += cfg.other_stall_per_access;

        if access.kind.is_read() {
            if l1_miss {
                // Estimate the MLP available to overlap this miss: the
                // number of read misses (including this one) issued by
                // this CPU within the out-of-order window.
                let window_start = state
                    .accesses
                    .saturating_sub(cfg.overlap_window_accesses as u64);
                while state
                    .recent_misses
                    .front()
                    .is_some_and(|&idx| idx < window_start)
                {
                    state.recent_misses.pop_front();
                }
                state.recent_misses.push_back(state.accesses);
                let mlp = state.recent_misses.len().clamp(1, cfg.max_mlp) as f64;
                let (latency, category) = if offchip {
                    (cfg.memory_cycles, StallKind::OffChip)
                } else {
                    (cfg.l2_hit_cycles, StallKind::OnChip)
                };
                let stall = latency / mlp;
                cycles_this_access += stall;
                match category {
                    StallKind::OffChip => self.breakdown.offchip_read += stall,
                    StallKind::OnChip => self.breakdown.onchip_read += stall,
                }
            }
        } else {
            // Stores retire into the store buffer; those that miss must
            // eventually drain to the memory system.
            if l1_miss {
                state.store_backlog += cfg.store_drain_cycles / cfg.store_mlp as f64;
            }
        }

        // The store buffer drains while the CPU makes forward progress.
        state.store_backlog = (state.store_backlog - cycles_this_access).max(0.0);
        let capacity_cycles =
            cfg.store_buffer_entries as f64 * cfg.store_drain_cycles / cfg.store_mlp as f64;
        if state.store_backlog > capacity_cycles {
            let stall = state.store_backlog - capacity_cycles;
            self.breakdown.store_buffer += stall;
            cycles_this_access += stall;
            state.store_backlog = capacity_cycles;
        }

        let segment =
            ((self.accesses_done as usize) / self.segment_len).min(self.segment_cycles.len() - 1);
        self.segment_cycles[segment] += cycles_this_access;
        self.accesses_done += 1;
    }

    /// Consumes the accounting into the run's [`TimingResult`].
    pub fn finish(self) -> TimingResult {
        TimingResult {
            total_cycles: self.breakdown.total(),
            breakdown: self.breakdown,
            segment_cycles: self.segment_cycles,
            accesses: self.accesses_done,
        }
    }
}

/// A reusable description of the system to evaluate (hierarchy + timing
/// parameters); each call to [`evaluate`](TimingModel::evaluate) builds a
/// fresh cache simulation so runs are independent.
#[derive(Debug, Clone, Copy)]
pub struct TimingModel {
    hierarchy: HierarchyConfig,
    num_cpus: usize,
    config: TimingConfig,
}

impl TimingModel {
    /// Creates a model for `num_cpus` processors with the given hierarchy and
    /// timing parameters.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero.
    pub fn new(hierarchy: HierarchyConfig, num_cpus: usize, config: TimingConfig) -> Self {
        assert!(num_cpus > 0, "need at least one cpu");
        Self {
            hierarchy,
            num_cpus,
            config,
        }
    }

    /// The timing parameters in use.
    pub fn config(&self) -> &TimingConfig {
        &self.config
    }

    /// Evaluates `num_accesses` accesses from `stream` with `prefetcher`
    /// attached, splitting the run into `segments` equal segments for paired
    /// sampling.  Returns the timing result together with the underlying
    /// cache-simulation summary.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn evaluate<S>(
        &self,
        prefetcher: &mut dyn Prefetcher,
        stream: &mut S,
        num_accesses: usize,
        segments: usize,
    ) -> (TimingResult, RunSummary)
    where
        S: Iterator<Item = MemAccess> + ?Sized,
    {
        let mut system = MultiCpuSystem::new(self.num_cpus, &self.hierarchy);
        let mut accounting =
            TimingAccounting::new(self.num_cpus, self.config, num_accesses, segments);
        let mut skipped_accesses: u64 = 0;
        let mut prefetch_requests: u64 = 0;
        // One request buffer for the whole walk (same batched hot path as
        // `memsim::run`): drained in order after every access.
        let mut batch = Vec::new();

        for access in stream.take(num_accesses) {
            if (access.cpu as usize) >= self.num_cpus {
                skipped_accesses += 1;
                continue;
            }
            let outcome = system.access(&access);
            prefetcher.on_access_into(&access, &outcome, &mut batch);
            prefetch_requests += batch.len() as u64;
            for req in batch.drain(..) {
                if (req.cpu as usize) >= self.num_cpus {
                    continue;
                }
                match req.level {
                    PrefetchLevel::L1 => {
                        if let Some(victim) = system.cpu_mut(req.cpu).stream_fill(req.addr) {
                            prefetcher.on_stream_eviction(req.cpu, victim.block_addr);
                        }
                    }
                    PrefetchLevel::L2 => {
                        system.cpu_mut(req.cpu).l2_prefetch_fill(req.addr);
                    }
                }
            }
            accounting.observe(
                &access,
                outcome.hierarchy.l1_miss(),
                outcome.hierarchy.offchip,
            );
        }

        let summary = RunSummary {
            accesses: accounting.accesses_done(),
            skipped_accesses,
            l1: system.l1_stats_total(),
            l2: system.l2_stats_total(),
            l1_breakdown: *system.l1_breakdown(),
            l2_breakdown: *system.l2_breakdown(),
            prefetch_requests,
        };
        (accounting.finish(), summary)
    }
}

#[derive(Debug, Clone, Copy)]
enum StallKind {
    OffChip,
    OnChip,
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::NullPrefetcher;
    use sms::{SmsConfig, SmsPrefetcher};
    use trace::{Application, GeneratorConfig};

    fn model(cpus: usize) -> TimingModel {
        TimingModel::new(HierarchyConfig::scaled(), cpus, TimingConfig::default())
    }

    #[test]
    fn breakdown_total_matches_cycles() {
        let m = model(1);
        let cfg = GeneratorConfig::default().with_cpus(1);
        let mut p = NullPrefetcher::new();
        let mut stream = Application::OltpDb2.stream(3, &cfg);
        let (r, summary) = m.evaluate(&mut p, &mut stream, 20_000, 8);
        assert_eq!(r.accesses, 20_000);
        assert_eq!(summary.accesses, 20_000);
        assert_eq!(summary.skipped_accesses, 0);
        assert!((r.total_cycles - r.breakdown.total()).abs() < 1e-6);
        let seg_sum: f64 = r.segment_cycles.iter().sum();
        assert!((seg_sum - r.total_cycles).abs() < 1e-6);
        assert!(r.cycles_per_access() > 1.0);
    }

    #[test]
    fn sms_never_slower_on_predictable_workload() {
        let m = model(2);
        let cfg = GeneratorConfig::default().with_cpus(2);
        let mut base = NullPrefetcher::new();
        let mut stream = Application::Sparse.stream(5, &cfg);
        let (base_r, _) = m.evaluate(&mut base, &mut stream, 40_000, 10);
        let mut sms = SmsPrefetcher::new(2, &SmsConfig::default());
        let mut stream = Application::Sparse.stream(5, &cfg);
        let (sms_r, _) = m.evaluate(&mut sms, &mut stream, 40_000, 10);
        assert!(sms_r.total_cycles < base_r.total_cycles);
        assert!(sms_r.breakdown.offchip_read < base_r.breakdown.offchip_read);
    }

    #[test]
    fn store_heavy_query_accumulates_store_buffer_stalls() {
        let m = model(1);
        let cfg = GeneratorConfig::default().with_cpus(1);
        let mut p = NullPrefetcher::new();
        let mut stream = Application::DssQry1.stream(4, &cfg);
        let (q1, _) = m.evaluate(&mut p, &mut stream, 40_000, 8);
        let mut p = NullPrefetcher::new();
        let mut stream = Application::DssQry2.stream(4, &cfg);
        let (q2, _) = m.evaluate(&mut p, &mut stream, 40_000, 8);
        assert!(
            q1.breakdown.store_buffer > q2.breakdown.store_buffer,
            "Qry1 ({}) should stall on stores more than Qry2 ({})",
            q1.breakdown.store_buffer,
            q2.breakdown.store_buffer
        );
    }

    #[test]
    fn busy_time_split_respects_fraction() {
        let m = TimingModel::new(
            HierarchyConfig::scaled(),
            1,
            TimingConfig::default().with_system_busy_fraction(0.25),
        );
        let cfg = GeneratorConfig::default().with_cpus(1);
        let mut p = NullPrefetcher::new();
        let mut stream = Application::WebApache.stream(2, &cfg);
        let (r, _) = m.evaluate(&mut p, &mut stream, 10_000, 4);
        let busy = r.breakdown.user_busy + r.breakdown.system_busy;
        assert!((r.breakdown.system_busy / busy - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "segment")]
    fn zero_segments_rejected() {
        let m = model(1);
        let cfg = GeneratorConfig::default().with_cpus(1);
        let mut p = NullPrefetcher::new();
        let mut stream = Application::Ocean.stream(1, &cfg);
        let _ = m.evaluate(&mut p, &mut stream, 100, 0);
    }
}
