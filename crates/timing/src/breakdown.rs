//! Execution-time breakdown categories (Figure 13).

use serde::{Deserialize, Serialize};

/// Cycles attributed to each of the paper's execution-time categories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Cycles in which user instructions commit.
    pub user_busy: f64,
    /// Cycles in which operating-system instructions commit.
    pub system_busy: f64,
    /// Stall cycles waiting for load data from off-chip.
    pub offchip_read: f64,
    /// Stall cycles waiting for load data from an on-chip cache (e.g. L2).
    pub onchip_read: f64,
    /// Stall cycles with a full store buffer.
    pub store_buffer: f64,
    /// All remaining stall cycles (branch mispredictions, instruction cache
    /// misses, ...).
    pub other: f64,
}

impl TimeBreakdown {
    /// Creates an all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total cycles across all categories.
    pub fn total(&self) -> f64 {
        self.user_busy
            + self.system_busy
            + self.offchip_read
            + self.onchip_read
            + self.store_buffer
            + self.other
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &TimeBreakdown) {
        self.user_busy += other.user_busy;
        self.system_busy += other.system_busy;
        self.offchip_read += other.offchip_read;
        self.onchip_read += other.onchip_read;
        self.store_buffer += other.store_buffer;
        self.other += other.other;
    }

    /// Returns this breakdown scaled by `1 / denominator`, used to normalize
    /// both bars of a Figure 13 pair to the same amount of completed work.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is not strictly positive.
    pub fn normalized_by(&self, denominator: f64) -> TimeBreakdown {
        assert!(
            denominator > 0.0,
            "normalization denominator must be positive"
        );
        TimeBreakdown {
            user_busy: self.user_busy / denominator,
            system_busy: self.system_busy / denominator,
            offchip_read: self.offchip_read / denominator,
            onchip_read: self.onchip_read / denominator,
            store_buffer: self.store_buffer / denominator,
            other: self.other / denominator,
        }
    }

    /// The category values in the order Figure 13 stacks them, paired with
    /// their labels.
    pub fn categories(&self) -> [(&'static str, f64); 6] {
        [
            ("Off-Chip Read", self.offchip_read),
            ("On-chip Read", self.onchip_read),
            ("Store Buffer", self.store_buffer),
            ("Other", self.other),
            ("System Busy", self.system_busy),
            ("User Busy", self.user_busy),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_merge() {
        let mut a = TimeBreakdown {
            user_busy: 1.0,
            system_busy: 2.0,
            offchip_read: 3.0,
            onchip_read: 4.0,
            store_buffer: 5.0,
            other: 6.0,
        };
        assert!((a.total() - 21.0).abs() < 1e-12);
        let b = a;
        a.merge(&b);
        assert!((a.total() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_scales_all_fields() {
        let a = TimeBreakdown {
            user_busy: 10.0,
            offchip_read: 30.0,
            ..Default::default()
        };
        let n = a.normalized_by(10.0);
        assert!((n.user_busy - 1.0).abs() < 1e-12);
        assert!((n.offchip_read - 3.0).abs() < 1e-12);
    }

    #[test]
    fn categories_cover_total() {
        let a = TimeBreakdown {
            user_busy: 1.0,
            system_busy: 1.0,
            offchip_read: 1.0,
            onchip_read: 1.0,
            store_buffer: 1.0,
            other: 1.0,
        };
        let sum: f64 = a.categories().iter().map(|(_, v)| v).sum();
        assert!((sum - a.total()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_denominator_rejected() {
        let _ = TimeBreakdown::new().normalized_by(0.0);
    }
}
