//! Speedup computation with paired-sample confidence intervals (Figure 12)
//! and normalized execution-time breakdown comparison (Figure 13).

use crate::breakdown::TimeBreakdown;
use crate::model::TimingResult;
use serde::{Deserialize, Serialize};
use stats::{ConfidenceInterval, PairedSamples};

/// Computes the speedup of `enhanced` over `base` with a 95 % confidence
/// interval from the paired per-segment cycle counts.
///
/// # Panics
///
/// Panics if the two results have different segment counts.
pub fn speedup_with_ci(base: &TimingResult, enhanced: &TimingResult) -> ConfidenceInterval {
    assert_eq!(
        base.segment_cycles.len(),
        enhanced.segment_cycles.len(),
        "paired sampling requires identical segmentation"
    );
    let mut samples = PairedSamples::new();
    for (&b, &e) in base.segment_cycles.iter().zip(&enhanced.segment_cycles) {
        if b > 0.0 && e > 0.0 {
            samples.push(b, e);
        }
    }
    samples.speedup_interval()
}

/// The two normalized bars of one Figure 13 pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakdownComparison {
    /// Base system, normalized so that its total is 1.0.
    pub base: TimeBreakdown,
    /// Enhanced (SMS) system, normalized by the *base* total per unit of
    /// work, so the bar height directly shows the speedup.
    pub enhanced: TimeBreakdown,
    /// Overall speedup implied by the two totals.
    pub speedup: f64,
}

impl BreakdownComparison {
    /// Builds the comparison, normalizing both systems to the same amount of
    /// completed work (accesses) and scaling so the base bar totals 1.0.
    ///
    /// # Panics
    ///
    /// Panics if either result completed zero accesses.
    pub fn new(base: &TimingResult, enhanced: &TimingResult) -> Self {
        assert!(
            base.accesses > 0 && enhanced.accesses > 0,
            "empty timing results"
        );
        // Cycles per unit of work.
        let base_per_work = base.breakdown.normalized_by(base.accesses as f64);
        let enhanced_per_work = enhanced.breakdown.normalized_by(enhanced.accesses as f64);
        let base_total = base_per_work.total();
        let normalized_base = base_per_work.normalized_by(base_total);
        let normalized_enhanced = enhanced_per_work.normalized_by(base_total);
        let speedup = if normalized_enhanced.total() > 0.0 {
            1.0 / normalized_enhanced.total()
        } else {
            0.0
        };
        Self {
            base: normalized_base,
            enhanced: normalized_enhanced,
            speedup,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(cycles: &[f64], breakdown: TimeBreakdown, accesses: u64) -> TimingResult {
        TimingResult {
            total_cycles: cycles.iter().sum(),
            breakdown,
            segment_cycles: cycles.to_vec(),
            accesses,
        }
    }

    #[test]
    fn uniform_improvement_gives_tight_interval() {
        let base = result(
            &[100.0, 200.0, 300.0],
            TimeBreakdown {
                user_busy: 600.0,
                ..Default::default()
            },
            1000,
        );
        let enhanced = result(
            &[50.0, 100.0, 150.0],
            TimeBreakdown {
                user_busy: 300.0,
                ..Default::default()
            },
            1000,
        );
        let ci = speedup_with_ci(&base, &enhanced);
        assert!((ci.mean - 2.0).abs() < 1e-9);
        assert!(ci.half_width < 1e-9);
    }

    #[test]
    fn breakdown_comparison_normalizes_to_base() {
        let base = result(
            &[1000.0],
            TimeBreakdown {
                user_busy: 400.0,
                offchip_read: 600.0,
                ..Default::default()
            },
            1000,
        );
        let enhanced = result(
            &[500.0],
            TimeBreakdown {
                user_busy: 400.0,
                offchip_read: 100.0,
                ..Default::default()
            },
            1000,
        );
        let cmp = BreakdownComparison::new(&base, &enhanced);
        assert!((cmp.base.total() - 1.0).abs() < 1e-9);
        assert!(cmp.enhanced.total() < 1.0);
        assert!((cmp.speedup - 2.0).abs() < 1e-9);
        // Busy time is preserved, only the stall shrank.
        assert!((cmp.base.user_busy - cmp.enhanced.user_busy).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "identical segmentation")]
    fn mismatched_segments_panic() {
        let base = result(&[1.0, 2.0], TimeBreakdown::default(), 10);
        let enhanced = result(&[1.0], TimeBreakdown::default(), 10);
        let _ = speedup_with_ci(&base, &enhanced);
    }
}
