//! Hand-computed reference values for `timing::speedup_with_ci` and
//! `timing::BreakdownComparison`: the paired-sample statistics and the
//! Figure 13 normalization are checked against numbers worked out by hand.

use timing::{speedup_with_ci, BreakdownComparison, TimeBreakdown, TimingResult};

fn result(cycles: &[f64], breakdown: TimeBreakdown, accesses: u64) -> TimingResult {
    TimingResult {
        total_cycles: cycles.iter().sum(),
        breakdown,
        segment_cycles: cycles.to_vec(),
        accesses,
    }
}

fn busy(user_busy: f64, offchip_read: f64) -> TimeBreakdown {
    TimeBreakdown {
        user_busy,
        offchip_read,
        ..Default::default()
    }
}

#[test]
fn speedup_ci_matches_manual_t_interval() {
    // Per-segment speedups: 100/50 = 2, 200/100 = 2, 400/100 = 4.
    // mean = 8/3; deviations (-2/3, -2/3, 4/3); sum of squares 24/9;
    // sample variance (n-1) = 4/3; SEM = sqrt((4/3)/3) = 2/3;
    // dof 2 => t = 4.303; half-width = 4.303 * 2/3.
    let base = result(&[100.0, 200.0, 400.0], busy(700.0, 0.0), 1_000);
    let enhanced = result(&[50.0, 100.0, 100.0], busy(250.0, 0.0), 1_000);
    let ci = speedup_with_ci(&base, &enhanced);
    assert_eq!(ci.samples, 3);
    assert!((ci.mean - 8.0 / 3.0).abs() < 1e-12);
    assert!((ci.half_width - 4.303 * 2.0 / 3.0).abs() < 1e-9);
}

#[test]
fn zero_cycle_segments_are_skipped_in_pairing() {
    // The second segment is empty on the base side (e.g. a CPU that never
    // reached this sample); only segments measured on both systems pair up.
    let base = result(&[100.0, 0.0, 300.0], busy(400.0, 0.0), 100);
    let enhanced = result(&[50.0, 10.0, 150.0], busy(210.0, 0.0), 100);
    let ci = speedup_with_ci(&base, &enhanced);
    assert_eq!(ci.samples, 2);
    assert!((ci.mean - 2.0).abs() < 1e-12);
    assert!(ci.half_width < 1e-12);
}

#[test]
fn breakdown_comparison_by_hand() {
    // Base: 400 busy + 600 off-chip over 1000 accesses => 1.0 cycles/access,
    // normalized bar = (0.4 busy, 0.6 off-chip), total 1.0.
    // Enhanced: 400 busy + 100 off-chip over 1000 accesses => 0.5 of the
    // base height: (0.4 busy, 0.1 off-chip) => speedup 2.0.
    let base = result(&[1000.0], busy(400.0, 600.0), 1_000);
    let enhanced = result(&[500.0], busy(400.0, 100.0), 1_000);
    let cmp = BreakdownComparison::new(&base, &enhanced);

    assert!((cmp.base.total() - 1.0).abs() < 1e-12);
    assert!((cmp.base.user_busy - 0.4).abs() < 1e-12);
    assert!((cmp.base.offchip_read - 0.6).abs() < 1e-12);

    assert!((cmp.enhanced.total() - 0.5).abs() < 1e-12);
    assert!((cmp.enhanced.user_busy - 0.4).abs() < 1e-12);
    assert!((cmp.enhanced.offchip_read - 0.1).abs() < 1e-12);

    assert!((cmp.speedup - 2.0).abs() < 1e-12);
}

#[test]
fn breakdown_comparison_normalizes_work_before_height() {
    // The enhanced run completed twice the work in the same total cycles:
    // per-access it costs half as much, so the bar is half as tall even
    // though the raw cycle counts are equal.
    let base = result(&[1000.0], busy(500.0, 500.0), 1_000);
    let enhanced = result(&[1000.0], busy(500.0, 500.0), 2_000);
    let cmp = BreakdownComparison::new(&base, &enhanced);
    assert!((cmp.base.total() - 1.0).abs() < 1e-12);
    assert!((cmp.enhanced.total() - 0.5).abs() < 1e-12);
    assert!((cmp.speedup - 2.0).abs() < 1e-12);
}

#[test]
fn identical_results_give_unit_speedup_and_equal_bars() {
    let base = result(&[250.0, 250.0], busy(300.0, 200.0), 500);
    let same = result(&[250.0, 250.0], busy(300.0, 200.0), 500);
    let ci = speedup_with_ci(&base, &same);
    assert!((ci.mean - 1.0).abs() < 1e-12);
    assert!(ci.half_width < 1e-12);
    let cmp = BreakdownComparison::new(&base, &same);
    assert!((cmp.speedup - 1.0).abs() < 1e-12);
    assert_eq!(cmp.base, cmp.enhanced);
}

#[test]
fn breakdown_comparison_round_trips_through_json() {
    let base = result(&[1000.0], busy(400.0, 600.0), 1_000);
    let enhanced = result(&[500.0], busy(400.0, 100.0), 1_000);
    let cmp = BreakdownComparison::new(&base, &enhanced);
    let json = serde_json::to_string_pretty(&cmp).expect("serialize");
    let back: BreakdownComparison = serde_json::from_str(&json).expect("parse");
    assert_eq!(back, cmp);
}
