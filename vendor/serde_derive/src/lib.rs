//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so this crate
//! re-implements just enough of `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for the types this workspace actually derives them on: non-generic structs
//! (named, tuple and unit) and enums whose variants are unit, tuple or
//! struct-like.  The generated code targets the vendored `serde` crate's
//! value-tree model (`serde::Value`) rather than the real serde data model.
//!
//! Parsing is done directly over `proc_macro::TokenStream` (no `syn`/`quote`),
//! which is sufficient because derive input is always a single well-formed
//! item definition.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize` (vendored value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    src.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (vendored value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    src.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported ({name})");
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

/// Splits a token stream on top-level commas, treating `<`/`>` pairs as
/// nesting (angle brackets are bare puncts in token streams).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tok);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|toks| !toks.is_empty())
        .map(|toks| {
            let mut i = 0;
            skip_attrs_and_vis(&toks, &mut i);
            match &toks[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|t| !t.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|toks| !toks.is_empty())
        .map(|toks| {
            let mut i = 0;
            skip_attrs_and_vis(&toks, &mut i);
            let name = match &toks[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other}"),
            };
            i += 1;
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit, // also covers `Variant = 3` discriminants
            };
            (name, fields)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let mut s = String::from("{ let mut __fields = ::std::vec::Vec::new();\n");
            for f in names {
                s.push_str(&format!(
                    "__fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__fields) }");
            s
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (vname, fields) in variants {
        match fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
            )),
            Fields::Named(names) => {
                let binds = names.join(", ");
                let mut pushes = String::new();
                for f in names {
                    pushes.push_str(&format!(
                        "__fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));\n"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binds} }} => {{\n\
                         let mut __fields = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(__fields))])\n\
                     }},\n"
                ));
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let payload = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {payload})]),\n",
                    binds.join(", ")
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}\n}}\n\
             }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

fn named_fields_from_object(path: &str, names: &[String]) -> String {
    let mut s = format!("::std::result::Result::Ok({path} {{\n");
    for f in names {
        s.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::field(__obj, \"{f}\"))?,\n"
        ));
    }
    s.push_str("})");
    s
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Named(names) => format!(
            "let __obj = __v.as_object().ok_or_else(|| ::serde::de::Error::custom(\
                 \"expected object for struct {name}\"))?;\n{}",
            named_fields_from_object(name, names)
        ),
        Fields::Tuple(n) => {
            let mut s = format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::de::Error::custom(\
                     \"expected array for tuple struct {name}\"))?;\n\
                 ::std::result::Result::Ok({name}(\n"
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "::serde::Deserialize::from_value(__arr.get({i}).unwrap_or(&::serde::Value::Null))?,\n"
                ));
            }
            s.push_str("))");
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for (vname, fields) in variants {
        match fields {
            Fields::Unit => unit_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
            )),
            Fields::Named(names) => {
                let ctor = named_fields_from_object(&format!("{name}::{vname}"), names);
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                         let __obj = __payload.as_object().ok_or_else(|| ::serde::de::Error::custom(\
                             \"expected object payload for variant {vname}\"))?;\n\
                         {ctor}\n\
                     }},\n"
                ));
            }
            Fields::Tuple(n) => {
                if *n == 1 {
                    tagged_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__payload)?)),\n"
                    ));
                } else {
                    let mut s = format!(
                        "\"{vname}\" => {{\n\
                             let __arr = __payload.as_array().ok_or_else(|| ::serde::de::Error::custom(\
                                 \"expected array payload for variant {vname}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname}(\n"
                    );
                    for i in 0..*n {
                        s.push_str(&format!(
                            "::serde::Deserialize::from_value(__arr.get({i}).unwrap_or(&::serde::Value::Null))?,\n"
                        ));
                    }
                    s.push_str("))},\n");
                    tagged_arms.push_str(&s);
                }
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                             &format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __payload) = (&__m[0].0, &__m[0].1);\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                                 &format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::de::Error::custom(\
                         \"expected string or single-key object for enum {name}\")),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
