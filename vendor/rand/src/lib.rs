//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no network access to crates.io, so this crate
//! re-implements the subset of the `rand` 0.8 API the workspace uses:
//! [`RngCore`], [`SeedableRng`] (with the SplitMix64-based `seed_from_u64`),
//! the [`Rng`] extension trait (`gen`, `gen_bool`, `gen_range`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! Sampled values are **not** bit-compatible with the real `rand` crate, but
//! they are fully deterministic for a given seed on every platform, which is
//! the property the deterministic trace generators rely on.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u32`/`u64`s.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64 exactly
    /// like `rand 0.8` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                let draw = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + draw as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64 + 1;
                let draw = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                start + draw as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let draw = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64 + 1;
                let draw = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

/// User-facing extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (which must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Draws a uniform value from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((0..self.len()).sample_from(rng))
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // xorshift so high bits vary (gen_range uses the full width)
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let a: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&a));
            let b = rng.gen_range(5..=5u32);
            assert_eq!(b, 5);
            let c = rng.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&c));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(3);
        let mut xs: Vec<u32> = (0..32).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct Dummy([u8; 32]);
        impl SeedableRng for Dummy {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Dummy(seed)
            }
        }
        assert_eq!(Dummy::seed_from_u64(1).0, Dummy::seed_from_u64(1).0);
        assert_ne!(Dummy::seed_from_u64(1).0, Dummy::seed_from_u64(2).0);
    }
}
