//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` crate's [`Value`] tree as JSON text
//! (compact and pretty) and parses JSON text back into a tree, covering the
//! `to_string` / `to_string_pretty` / `from_str` entry points this workspace
//! uses.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs a value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(Error::from)
}

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let v = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` on integral floats, so the
                // output parses back as a float rather than an integer.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new("invalid number"))
        } else if text.starts_with('-') {
            // Parse the signed text as a whole so i64::MIN round-trips.
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new("invalid number"))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("sms".into())),
            ("coverage".into(), Value::Float(0.5)),
            (
                "sizes".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            r#"{"name":"sms","coverage":0.5,"sizes":[1,2],"none":null}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"sms\""));
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"a": [1, -2, 3.5], "b": "x\ny", "c": true, "d": null}"#;
        let v: Value = from_str(text).unwrap();
        let rendered = to_string(&v).unwrap();
        let again: Value = from_str(&rendered).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn extreme_integers_round_trip() {
        let json = to_string(&i64::MIN).unwrap();
        assert_eq!(json, "-9223372036854775808");
        let v: Value = from_str(&json).unwrap();
        assert_eq!(v, Value::Int(i64::MIN));
        let v: Value = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(v, Value::UInt(u64::MAX));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
