//! Offline stand-in for `proptest`.
//!
//! Provides the subset of proptest this workspace uses: the [`Strategy`]
//! trait with `prop_map`, range and tuple strategies, `collection::vec`,
//! `bool::weighted`, [`ProptestConfig`], the [`proptest!`] macro and the
//! `prop_assert*` macros.  Cases are generated from a ChaCha8 RNG seeded from
//! the test name, so runs are deterministic; there is no shrinking — a
//! failing case fails the test directly with the standard assertion message.

use rand::{Rng, SeedableRng};

/// The RNG driving value generation.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Creates the deterministic RNG for a named test.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident / $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with a random length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Produces vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding `true` with a fixed probability.
    #[derive(Debug, Clone)]
    pub struct Weighted {
        probability: f64,
    }

    /// Produces `true` with probability `probability`.
    pub fn weighted(probability: f64) -> Weighted {
        Weighted { probability }
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(self.probability)
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Defines property-based tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let ($($pat,)+) =
                        ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = super::test_rng("ranges_and_maps");
        let doubled = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..200 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = super::test_rng("vec_strategy");
        let s = super::collection::vec(0u8..4, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuples and weighted bools all work.
        #[test]
        fn macro_generates_cases((a, b) in (0u8..4, 1u64..100), flag in crate::bool::weighted(0.5)) {
            prop_assert!(a < 4);
            prop_assert!((1..100).contains(&b));
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
