//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha stream cipher with 8 rounds ([`ChaCha8Rng`])
//! over the vendored `rand` crate's `RngCore`/`SeedableRng` traits.  Output is
//! deterministic for a `(seed, stream)` pair on every platform.  The word
//! stream is **not** bit-compatible with the real `rand_chacha` crate, but the
//! workspace only relies on determinism, stream independence and statistical
//! quality, all of which the cipher provides.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha RNG with 8 rounds, a 64-bit block counter and a 64-bit stream id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buffer: [u32; 16],
    index: usize,
}

impl ChaCha8Rng {
    /// Selects the 64-bit stream id, restarting output from the beginning of
    /// that stream (block counter and buffered words are reset).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = 16;
    }

    /// Returns the current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let input: [u32; 16] = [
            CONSTANTS[0],
            CONSTANTS[1],
            CONSTANTS[2],
            CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let mut x = input;
        for _ in 0..4 {
            // column round
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (out, inp) in x.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = x;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(lo) | (u64::from(hi) << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(12345);
        let mut b = ChaCha8Rng::seed_from_u64(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn streams_are_independent_and_resettable() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        a.set_stream(1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();

        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(2);
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);

        // Re-selecting the stream restarts it.
        b.set_stream(1);
        let zs: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, zs);
    }

    #[test]
    fn output_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 10_000;
        let mut ones = 0u32;
        let mut sum = 0.0f64;
        for _ in 0..n {
            ones += rng.next_u64().count_ones();
            sum += rng.gen::<f64>();
        }
        let mean_bits = f64::from(ones) / n as f64;
        assert!((mean_bits - 32.0).abs() < 0.5, "mean set bits {mean_bits}");
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean unit draw {mean}");
    }
}
