//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides a self-contained replacement exposing the subset of serde's
//! surface this workspace uses: the `Serialize` / `Deserialize` traits (and
//! derive macros re-exported from the vendored `serde_derive`), implemented
//! over a simple JSON-like value tree ([`Value`]) instead of serde's
//! visitor-based data model.  The vendored `serde_json` renders and parses
//! that tree.
//!
//! Object values keep insertion order (`Vec<(String, Value)>`), so derived
//! struct serialization preserves declaration order like real serde does.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-like value tree: the serialization target of [`Serialize`] and the
/// source of [`Deserialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer (only used for negative values).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with preserved key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if this value is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the array elements if this value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Returns the string slice if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is any JSON number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }
}

/// Looks up `key` in an object's entry list, yielding `Null` when absent.
/// Used by derive-generated `Deserialize` impls.
pub fn field<'a>(obj: &'a [(String, Value)], key: &str) -> &'a Value {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null)
}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

/// Deserialization error support.
pub mod de {
    /// A deserialization error with a human-readable message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        message: String,
    }

    impl Error {
        /// Creates an error from a message.
        pub fn custom(message: &str) -> Self {
            Error {
                message: message.to_string(),
            }
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    impl std::error::Error for Error {}
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

fn as_u64(v: &Value) -> Result<u64, de::Error> {
    match v {
        Value::UInt(n) => Ok(*n),
        Value::Int(n) if *n >= 0 => Ok(*n as u64),
        Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as u64),
        _ => Err(de::Error::custom("expected unsigned integer")),
    }
}

fn as_i64(v: &Value) -> Result<i64, de::Error> {
    match v {
        Value::UInt(n) => i64::try_from(*n).map_err(|_| de::Error::custom("integer overflow")),
        Value::Int(n) => Ok(*n),
        Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
        _ => Err(de::Error::custom("expected integer")),
    }
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                <$t>::try_from(as_u64(v)?).map_err(|_| de::Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                <$t>::try_from(as_i64(v)?).map_err(|_| de::Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(de::Error::custom("expected number")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(de::Error::custom("expected boolean")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(de::Error::custom("expected string")),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_array()
            .ok_or_else(|| de::Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let items = Vec::<T>::from_value(v)?;
        items
            .try_into()
            .map_err(|_| de::Error::custom("array length mismatch"))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| de::Error::custom("expected array"))?;
        if arr.len() != 2 {
            return Err(de::Error::custom("expected 2-element array"));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| de::Error::custom("expected array"))?;
        if arr.len() != 3 {
            return Err(de::Error::custom("expected 3-element array"));
        }
        Ok((
            A::from_value(&arr[0])?,
            B::from_value(&arr[1])?,
            C::from_value(&arr[2])?,
        ))
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_object()
            .ok_or_else(|| de::Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_object()
            .ok_or_else(|| de::Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let arr = [4u64, 5];
        assert_eq!(<[u64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()).unwrap(), None);
        let pair = (1u8, 2.5f64);
        assert_eq!(<(u8, f64)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get("a"), Some(&Value::UInt(1)));
        assert_eq!(v.get("b"), None);
    }
}
