//! Offline stand-in for `criterion`.
//!
//! Implements the small slice of the criterion API the `bench` crate uses —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{throughput, sample_size,
//! bench_function, finish}`, `Bencher::iter`, `Throughput` and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock timing loop instead of criterion's statistical machinery.
//! Each iteration is timed individually, so every benchmark prints its mean
//! iteration time together with the min/max and the sample standard
//! deviation (computed by `stats::summary`) to stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Minimum measurement time per benchmark.
const MIN_MEASURE: Duration = Duration::from_millis(200);
/// Maximum number of timed iterations per benchmark.
const MAX_ITERS: u64 = 1000;

/// Opaque value sink preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units for reporting throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            group: name.to_string(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, None, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stand-in sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in sizes runs by time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.group, name);
        run_benchmark(&label, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("  {label}: no iterations recorded");
        return;
    }
    let per_iter = stats::mean(&bencher.samples);
    let min = bencher
        .samples
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let max = bencher.samples.iter().copied().fold(0.0f64, f64::max);
    let sigma = stats::std_dev(&bencher.samples);
    let mut line = format!(
        "  {label}: {:.3} ms/iter (min {:.3}, max {:.3}, \u{3c3} {:.3}, n={})",
        per_iter * 1e3,
        min * 1e3,
        max * 1e3,
        sigma * 1e3,
        bencher.iters
    );
    if let Some(Throughput::Elements(n)) = throughput {
        let rate = n as f64 / per_iter;
        line.push_str(&format!(" ({rate:.0} elem/s)"));
    } else if let Some(Throughput::Bytes(n)) = throughput {
        let rate = n as f64 / per_iter;
        line.push_str(&format!(" ({:.1} MiB/s)", rate / (1024.0 * 1024.0)));
    }
    println!("{line}");
}

/// Passed to benchmark closures; measures the timing loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Calls `f` repeatedly until enough time has been measured, recording
    /// each iteration's wall-clock time individually so the report can show
    /// min/max and the sample standard deviation alongside the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call outside the measurement.
        black_box(f());
        let start = Instant::now();
        let mut samples = Vec::new();
        loop {
            let iter_start = Instant::now();
            black_box(f());
            samples.push(iter_start.elapsed().as_secs_f64());
            if start.elapsed() >= MIN_MEASURE || samples.len() as u64 >= MAX_ITERS {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = samples.len() as u64;
        self.samples = samples;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            samples: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert!(b.iters >= 1);
        assert!(b.elapsed > Duration::ZERO);
        assert_eq!(b.samples.len() as u64, b.iters);
    }

    #[test]
    fn sample_statistics_are_consistent() {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            samples: Vec::new(),
        };
        b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        let mean = stats::mean(&b.samples);
        let min = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = b.samples.iter().copied().fold(0.0f64, f64::max);
        assert!(
            min <= mean && mean <= max,
            "min {min} mean {mean} max {max}"
        );
        assert!(stats::std_dev(&b.samples) >= 0.0);
        // Every sample really slept, so the minimum is bounded below.
        assert!(min >= 45e-6, "min sample {min} too small");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10)).sample_size(5);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
